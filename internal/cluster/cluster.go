// Package cluster turns a set of durable.Memory nodes into a replicated
// morphtree deployment: one primary journals and serves every write,
// followers pull its sealed WAL stream and apply it verbatim, and a
// fencing-epoch protocol hands leadership over without ever losing an
// acknowledged write.
//
// The design leans on two invariants the lower layers already provide:
//
//   - The WAL is a wire-safe replication format. Records are CRC-framed,
//     HMAC'd, and counter-sealed, so a replication batch is just a run of
//     WAL frames re-sealed under an epoch-bound key — the follower's
//     decoder enforces integrity and LSN contiguity exactly as crash
//     recovery does.
//   - A follower journals the primary's records verbatim (NoAudit), so
//     its own recovered per-shard LSN vector IS its replication cursor.
//     A follower crash resumes streaming from whatever its local WAL
//     proves durable, with no separate cursor state to corrupt.
//
// Leadership is guarded by a monotonically increasing fencing epoch. A
// node that sees a higher epoch than its own steps down fenced; batch
// keys are derived from the epoch, so a deposed primary's stream is not
// even decodable as the new epoch's. Promotion is control-plane driven:
// the caller surveys survivors, computes the element-wise max durable
// vector, and asks one replica to promote to epoch+1 — the replica
// refuses while its leader lease is unexpired, catches its tail up from
// donor peers, and only then assumes the role.
package cluster

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/securemem/morphtree/internal/durable"
	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/proof"
	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/shard"
	"github.com/securemem/morphtree/internal/wal"
	"github.com/securemem/morphtree/internal/wire"
)

// Node roles. A fenced node saw a higher epoch than its own and refuses
// data ops until the control plane tells it whom to follow.
const (
	RolePrimary = "primary"
	RoleReplica = "replica"
	RoleFenced  = "fenced"
)

// Config tunes one cluster node.
type Config struct {
	// Self is this node's advertised address (what peers dial).
	Self string
	// Peers lists the other cluster members' advertised addresses. Static
	// membership: promotion uses it to find donor replicas for catch-up.
	Peers []string
	// Primary starts this node as the leader (epoch Epoch); otherwise it
	// starts as a replica following Leader.
	Primary bool
	// Leader is the address a replica starts pulling from.
	Leader string
	// Epoch is the starting fencing epoch (default 1).
	Epoch uint64
	// Lease is how long a replica keeps trusting a silent leader. A
	// replica refuses promotion until Lease has elapsed since its last
	// successful poll, so a slow-but-alive primary is not usurped while
	// it can still ack writes (default 1s).
	Lease time.Duration
	// AckReplicas is how many followers' durable marks must cover a write
	// before the primary acknowledges it (semi-synchronous replication).
	// 0 acks on local durability alone.
	AckReplicas int
	// AckTimeout bounds how long a write waits for replication cover
	// before failing with an AckTimeoutError (default 2s).
	AckTimeout time.Duration
	// PollWait is how long the primary holds an empty replication poll
	// open waiting for new durable records (default 250ms).
	PollWait time.Duration
	// PollRetry is how long a follower waits after a failed poll before
	// retrying (default 50ms).
	PollRetry time.Duration
	// BatchRecords caps records per shard per replication response
	// (default 512).
	BatchRecords int
	// DialTimeout bounds replication dials and round trips (default 5s).
	DialTimeout time.Duration
	// Logf, when set, observes role changes and replication errors.
	Logf func(format string, args ...any)
	// Obs, when non-nil, records cluster counters and the replication-lag
	// gauge (cluster.repl.lag, in records behind the leader).
	Obs *obs.Registry
	// Tracer, when non-nil, receives ReplBatch, Promote, and Fence events.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Epoch == 0 {
		c.Epoch = 1
	}
	if c.Lease <= 0 {
		c.Lease = time.Second
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 2 * time.Second
	}
	if c.PollWait <= 0 {
		c.PollWait = 250 * time.Millisecond
	}
	if c.PollRetry <= 0 {
		c.PollRetry = 50 * time.Millisecond
	}
	if c.BatchRecords <= 0 {
		c.BatchRecords = 512
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	return c
}

// replicaState is what a primary tracks per polling follower.
type replicaState struct {
	marks    []uint64
	lastPoll time.Time
}

// Node is one cluster member. It implements server.Engine (plus the
// Checkpointer, Flusher, and Prover optional surfaces) by delegating to
// its durable.Memory — except that data ops on a non-primary answer
// *wire.MovedError, the refused-before-execution redirect clients follow
// to the leader.
type Node struct {
	cfg   Config
	shcfg shard.Config
	dcfg  durable.Config

	cBatches    *obs.Counter
	cRecords    *obs.Counter
	cAckTimeout *obs.Counter
	cFences     *obs.Counter
	cPromotes   *obs.Counter
	cBootstraps *obs.Counter
	cMigrations *obs.Counter
	gLag        *obs.Gauge

	mu          sync.Mutex
	mem         *durable.Memory
	role        string
	epoch       uint64
	leader      string // advertised leader address ("" when unknown)
	lastContact time.Time
	bootstrap   bool // next poll must request a full snapshot
	replicas    map[string]*replicaState
	ackCh       chan struct{} // closed when replica marks advance
	pullCl      *wire.Client  // replica's connection to the leader
	pullAddr    string        // address pullCl is dialed to
	onCkpt      func(seq uint64)

	// Live shard migration state (see migrate.go).
	migOut     *migState      // donor: spill being served
	migIn      *migState      // recipient: shard being installed (puller skips it)
	migratedTo map[int]string // donor: shard -> its new home, post-cutover
	owned      map[int]bool   // recipient: migrated-in shards this node serves

	stopc  chan struct{}
	wg     sync.WaitGroup
	closed bool
	halted bool
}

// meta is the node's durable cluster identity, persisted in the data
// directory so a restart cannot resurrect a deposed primary at its old
// epoch.
type meta struct {
	Epoch uint64 `json:"epoch"`
	Role  string `json:"role"`
}

const metaFile = "cluster.META"

// Open recovers (or creates) the node's durable state and starts its
// replication machinery. Cluster nodes always run with NoAudit — a
// follower must journal the primary's record sequence byte-for-byte, and
// a primary injecting local audit records would fork the LSN space its
// followers mirror. ReplHistory defaults to 4096 records per shard.
func Open(shcfg shard.Config, dcfg durable.Config, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Config.Self is required")
	}
	if !cfg.Primary && cfg.Leader == "" {
		return nil, fmt.Errorf("cluster: replica needs Config.Leader")
	}
	dcfg.NoAudit = true
	if dcfg.ReplHistory == 0 {
		dcfg.ReplHistory = 4096
	}
	mem, _, err := durable.Open(shcfg, dcfg)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:         cfg,
		shcfg:       shcfg,
		dcfg:        dcfg,
		cBatches:    cfg.Obs.Counter("cluster.repl.batches"),
		cRecords:    cfg.Obs.Counter("cluster.repl.records"),
		cAckTimeout: cfg.Obs.Counter("cluster.ack.timeouts"),
		cFences:     cfg.Obs.Counter("cluster.fences"),
		cPromotes:   cfg.Obs.Counter("cluster.promotes"),
		cBootstraps: cfg.Obs.Counter("cluster.bootstraps"),
		cMigrations: cfg.Obs.Counter("cluster.migrations"),
		gLag:        cfg.Obs.Gauge("cluster.repl.lag"),
		mem:         mem,
		role:        RoleReplica,
		epoch:       cfg.Epoch,
		leader:      cfg.Leader,
		lastContact: time.Now(),
		replicas:    map[string]*replicaState{},
		stopc:       make(chan struct{}),
	}
	if cfg.Primary {
		n.role = RolePrimary
		n.leader = cfg.Self
	}
	if m, ok, err := n.loadMeta(); err != nil {
		_ = mem.Close()
		return nil, err
	} else if ok {
		// The persisted identity wins over the startup flags: a deposed
		// primary that crashed and restarted must not come back leading
		// at its old epoch.
		if m.Epoch > n.epoch {
			n.epoch = m.Epoch
		}
		if m.Role != "" {
			n.role = m.Role
		}
		if n.role != RolePrimary {
			n.leader = cfg.Leader
			// Its journal may carry a divergent unacked suffix; rejoin
			// from a snapshot.
			n.bootstrap = true
		}
	}
	if err := n.saveMetaLocked(); err != nil {
		_ = mem.Close()
		return nil, err
	}
	n.wg.Add(1)
	go n.puller()
	n.logf("cluster: %s open as %s (epoch %d, leader %s)", cfg.Self, n.role, n.epoch, n.leader)
	return n, nil
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

func (n *Node) loadMeta() (meta, bool, error) {
	b, err := os.ReadFile(filepath.Join(n.dcfg.Dir, metaFile))
	if os.IsNotExist(err) {
		return meta{}, false, nil
	}
	if err != nil {
		return meta{}, false, fmt.Errorf("cluster: read meta: %w", err)
	}
	var m meta
	if err := json.Unmarshal(b, &m); err != nil {
		return meta{}, false, fmt.Errorf("cluster: decode meta: %w", err)
	}
	return m, true, nil
}

// saveMetaLocked persists the node's epoch and role (atomic rename).
// Called with n.mu held (or before the node is shared).
func (n *Node) saveMetaLocked() error {
	b, err := json.Marshal(meta{Epoch: n.epoch, Role: n.role})
	if err != nil {
		return fmt.Errorf("cluster: encode meta: %w", err)
	}
	path := filepath.Join(n.dcfg.Dir, metaFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("cluster: write meta: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("cluster: install meta: %w", err)
	}
	return wal.SyncDir(n.dcfg.Dir)
}

// Close stops replication and closes the durable memory.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	n.Halt()
	n.mu.Lock()
	mem := n.mem
	n.mu.Unlock()
	return mem.Close()
}

// Halt stops the puller and unblocks every in-flight ack wait without
// closing the store. A serving stack should Halt before draining its
// server — handlers blocked in waitAck exit promptly instead of riding
// out AckTimeout with no replica left to poll — and Close after the
// drain. Close implies Halt.
func (n *Node) Halt() {
	n.mu.Lock()
	if n.halted {
		n.mu.Unlock()
		return
	}
	n.halted = true
	close(n.stopc)
	cl := n.pullCl
	n.pullCl = nil
	n.mu.Unlock()
	if cl != nil {
		_ = cl.Close()
	}
	n.wg.Wait()
}

// memory returns the current durable memory (swapped on snapshot
// bootstrap, so callers must not cache it across ops).
func (n *Node) memory() *durable.Memory {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mem
}

// movedLocked builds the redirect for a data op that landed on a
// non-primary. Called with n.mu held.
func (n *Node) movedLocked() error {
	leader := n.leader
	if leader == n.cfg.Self {
		// A fenced ex-primary must not advertise itself.
		leader = ""
	}
	return &wire.MovedError{Epoch: n.epoch, Leader: leader}
}

// replKey derives the sealing key for replication batches at one epoch
// and shard. Binding the epoch into the key is fencing in depth: a batch
// sealed by a deposed primary fails MAC verification at the new epoch
// before any record is applied.
func replKey(master []byte, epoch uint64, shardIdx int) []byte {
	h := hmac.New(sha256.New, master)
	fmt.Fprintf(h, "morphtree/repl/%d/%d", epoch, shardIdx)
	return h.Sum(nil)
}

func (n *Node) codec(epoch uint64, shardIdx int) (*wal.Codec, error) {
	return wal.NewCodec(wal.Options{Key: replKey(n.shcfg.Mem.Key, epoch, shardIdx)})
}

// --- server.Engine surface -------------------------------------------

// Read serves a line read on the node that serves the line's shard — the
// primary for most shards, the recipient for a migrated-in one; elsewhere
// it answers the moved redirect (naming the shard's new home when the
// shard was migrated away).
func (n *Node) Read(addr uint64) ([]byte, error) {
	n.mu.Lock()
	mem := n.mem
	if err := n.routeShardLocked(n.shardFor(mem, addr)); err != nil {
		n.mu.Unlock()
		return nil, err
	}
	n.mu.Unlock()
	return mem.Read(addr)
}

// Write journals a line write on the node that serves the line's shard.
// On the primary it waits for the configured replication cover before
// acknowledging; on a migration recipient the owned shard acks on local
// durability (its journal is the shard's only authority). Elsewhere it
// answers the moved redirect.
func (n *Node) Write(addr uint64, line []byte) error {
	n.mu.Lock()
	mem := n.mem
	if err := n.routeShardLocked(n.shardFor(mem, addr)); err != nil {
		n.mu.Unlock()
		return err
	}
	epoch := n.epoch
	primary := n.role == RolePrimary
	n.mu.Unlock()
	shardIdx, lsn, err := mem.WriteLSN(addr, line)
	if err != nil {
		return n.translateFenced(err)
	}
	if !primary {
		return nil
	}
	return n.waitAck(epoch, shardIdx, lsn)
}

// VerifyAll re-verifies every written line against the local integrity
// tree. Served by every role: auditing a replica is how the harness
// proves replicated state honest.
func (n *Node) VerifyAll() error { return n.memory().VerifyAll() }

// Stats returns the local engine stats (any role).
func (n *Node) Stats() secmem.Stats { return n.memory().Stats() }

// Save streams the local engine state (any role).
func (n *Node) Save(w io.Writer) error { return n.memory().Save(w) }

// FlipDataBit is the adversary interface (tamper testing); served by
// whichever node serves the line's shard, refused (false) elsewhere.
func (n *Node) FlipDataBit(addr uint64, byteOff int, bit uint) bool {
	n.mu.Lock()
	mem := n.mem
	if err := n.routeShardLocked(n.shardFor(mem, addr)); err != nil {
		n.mu.Unlock()
		return false
	}
	n.mu.Unlock()
	return mem.FlipDataBit(addr, byteOff, bit)
}

// Checkpoint cuts a durable checkpoint on the local memory (any role; a
// follower checkpointing only truncates its own replay tail, its durable
// marks — the replication cursor — are unaffected).
func (n *Node) Checkpoint() error { return n.memory().Checkpoint() }

// CheckpointDelta cuts an incremental checkpoint on the local memory
// (any role; satisfies ckpt.Target so a background Runner can pace a
// cluster node exactly like a standalone store).
func (n *Node) CheckpointDelta() error { return n.memory().CheckpointDelta() }

// DeltaChainLen reports the local delta chain length (ckpt.Target).
func (n *Node) DeltaChainLen() int { return n.memory().DeltaChainLen() }

// Seq returns the local snapshot sequence number.
func (n *Node) Seq() uint64 { return n.memory().Seq() }

// Flush forces buffered WAL appends durable.
func (n *Node) Flush() error { return n.memory().Flush() }

// Prove builds a verifiable-read witness from the local tree.
func (n *Node) Prove(addr uint64) (*proof.Proof, error) { return n.memory().Prove(addr) }

// RootDigests reports every local shard's root digest.
func (n *Node) RootDigests() []proof.Digest { return n.memory().RootDigests() }

// OnCheckpoint forwards checkpoint notifications (transparency log).
// The registration survives snapshot-bootstrap memory swaps.
func (n *Node) OnCheckpoint(fn func(seq uint64)) {
	n.mu.Lock()
	n.onCkpt = fn
	n.mem.OnCheckpoint(fn)
	n.mu.Unlock()
}

// Durability returns the local durability stats.
func (n *Node) Durability() durable.Stats { return n.memory().Durability() }

// RegisterMetrics exports the underlying store's gauges into reg.
func (n *Node) RegisterMetrics(reg *obs.Registry) { n.memory().RegisterMetrics(reg) }

// SetPeers replaces the static membership used for catch-up donor pulls.
// Useful when peer addresses are only known after every node has bound
// its listener.
func (n *Node) SetPeers(peers []string) {
	n.mu.Lock()
	n.cfg.Peers = append([]string(nil), peers...)
	n.mu.Unlock()
}
