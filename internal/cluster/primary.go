package cluster

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"github.com/securemem/morphtree/internal/durable"
	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/wire"
)

// AckTimeoutError reports a write that became locally durable but did not
// reach the configured replication cover in time. The outcome is
// ambiguous the same way a died-mid-round-trip transport error is: the
// write survives if this primary lives (or its record was replicated
// after the timeout fired), and re-applying the same content is the
// caller's call — so it crosses the wire as a plain remote error, which
// resilient clients do NOT auto-retry.
type AckTimeoutError struct {
	Shard int
	LSN   uint64
	Need  int
	Have  int
}

// Error implements error.
func (e *AckTimeoutError) Error() string {
	return fmt.Sprintf("cluster: write (shard %d, lsn %d) locally durable but only %d/%d replica acks arrived in time",
		e.Shard, e.LSN, e.Have, e.Need)
}

// waitAck blocks until cfg.AckReplicas followers' durable marks cover
// (shardIdx, lsn), the node stops being the primary it was (fenced or
// deposed mid-wait), or the ack timeout fires.
func (n *Node) waitAck(epoch uint64, shardIdx int, lsn uint64) error {
	if n.cfg.AckReplicas <= 0 {
		return nil
	}
	timer := time.NewTimer(n.cfg.AckTimeout)
	defer timer.Stop()
	for {
		n.mu.Lock()
		if n.role != RolePrimary || n.epoch != epoch {
			err := n.movedLocked()
			n.mu.Unlock()
			return err
		}
		have := 0
		for _, rs := range n.replicas {
			if shardIdx < len(rs.marks) && rs.marks[shardIdx] >= lsn {
				have++
			}
		}
		if have >= n.cfg.AckReplicas {
			n.mu.Unlock()
			return nil
		}
		if n.ackCh == nil {
			n.ackCh = make(chan struct{})
		}
		ch := n.ackCh
		n.mu.Unlock()
		select {
		case <-ch:
		case <-n.stopc:
			return fmt.Errorf("cluster: node closed while awaiting replication cover")
		case <-timer.C:
			n.cAckTimeout.Inc()
			return &AckTimeoutError{Shard: shardIdx, LSN: lsn, Need: n.cfg.AckReplicas, Have: have}
		}
	}
}

// notifyAckLocked wakes every waitAck waiter to re-check replica marks.
// Called with n.mu held.
func (n *Node) notifyAckLocked() {
	if n.ackCh != nil {
		close(n.ackCh)
		n.ackCh = nil
	}
}

// Replicate answers one follower poll. Any role serves it as long as the
// epochs match — a replica answering makes it a catch-up donor during
// promotion — but only a primary registers the poller for ack tracking.
// A request at a higher epoch fences this node; at a lower epoch it is
// refused with the redirect.
func (n *Node) Replicate(req *wire.ReplicateRequest) (*wire.ReplicateResponse, error) {
	n.mu.Lock()
	if req.Epoch > n.epoch {
		n.fenceLocked(req.Epoch)
		err := n.movedLocked()
		n.mu.Unlock()
		return nil, err
	}
	if req.Epoch < n.epoch {
		err := n.movedLocked()
		n.mu.Unlock()
		return nil, err
	}
	mem := n.mem
	epoch := n.epoch
	if n.role == RolePrimary && req.Node != "" {
		rs := n.replicas[req.Node]
		if rs == nil {
			rs = &replicaState{}
			n.replicas[req.Node] = rs
		}
		rs.lastPoll = time.Now()
		if !req.Bootstrap {
			rs.marks = append(rs.marks[:0], req.Marks...)
			n.notifyAckLocked()
		}
	}
	n.mu.Unlock()

	if len(req.Marks) != mem.NumShards() && !req.Bootstrap {
		return nil, fmt.Errorf("cluster: poll carries %d shard marks, this node has %d shards", len(req.Marks), mem.NumShards())
	}
	if req.Bootstrap {
		return n.snapshotResponse(mem, epoch)
	}
	resp, progress, err := n.gatherBatches(mem, epoch, req.Marks)
	if err != nil || progress || n.cfg.PollWait <= 0 {
		return resp, err
	}
	// Nothing new: hold the poll open until something becomes durable,
	// then gather once more. The signal channel is armed before the
	// re-check inside gatherBatches, so a record landing in between is
	// not missed — it is simply delivered immediately.
	sig := mem.DurableSignal()
	timer := time.NewTimer(n.cfg.PollWait)
	defer timer.Stop()
	select {
	case <-sig:
	case <-timer.C:
	case <-n.stopc:
	}
	resp, _, err = n.gatherBatches(mem, epoch, req.Marks)
	return resp, err
}

// gatherBatches collects sealed per-shard record runs past the
// follower's marks. The second result reports whether anything (or a
// snapshot demand) was produced.
func (n *Node) gatherBatches(mem *durable.Memory, epoch uint64, marks []uint64) (*wire.ReplicateResponse, bool, error) {
	resp := &wire.ReplicateResponse{
		Epoch:   epoch,
		Marks:   mem.SyncedLSNs(),
		Batches: make([][]byte, mem.NumShards()),
	}
	progress := false
	for i := 0; i < mem.NumShards(); i++ {
		recs, ok, err := mem.ReadRecords(i, marks[i], n.cfg.BatchRecords)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			// The history behind this cursor is gone (checkpoint
			// truncation); only a snapshot can help.
			snap, err := n.snapshotResponse(mem, epoch)
			return snap, true, err
		}
		if len(recs) == 0 {
			continue
		}
		codec, err := n.codec(epoch, i)
		if err != nil {
			return nil, false, err
		}
		var batch []byte
		for _, rec := range recs {
			if batch, err = codec.AppendRecord(batch, rec); err != nil {
				return nil, false, err
			}
		}
		resp.Batches[i] = batch
		progress = true
	}
	return resp, progress, nil
}

// snapshotResponse freezes the memory and ships its full state.
func (n *Node) snapshotResponse(mem *durable.Memory, epoch uint64) (*wire.ReplicateResponse, error) {
	var buf bytes.Buffer
	snapMarks, err := mem.SaveMarks(&buf)
	if err != nil {
		return nil, err
	}
	return &wire.ReplicateResponse{
		Epoch:     epoch,
		Marks:     mem.SyncedLSNs(),
		Snapshot:  buf.Bytes(),
		SnapMarks: snapMarks,
	}, nil
}

// fenceLocked steps the node down after observing a higher epoch. The
// leader at that epoch is unknown until a Follow arrives; data ops
// answer leaderless redirects in the meantime. An ex-primary's journal
// may carry an unacked suffix the new leader never saw, so its eventual
// rejoin is forced through a snapshot bootstrap. Called with n.mu held.
func (n *Node) fenceLocked(observed uint64) {
	n.cFences.Inc()
	n.cfg.Tracer.Emit(obs.KindFence, -1, observed, n.epoch, 0)
	n.logf("cluster: %s fenced: observed epoch %d > local %d (was %s)", n.cfg.Self, observed, n.epoch, n.role)
	if n.role == RolePrimary {
		n.bootstrap = true
	}
	n.role = RoleFenced
	n.epoch = observed
	n.leader = ""
	n.notifyAckLocked() // wake write waiters so they fail with the redirect
	if err := n.saveMetaLocked(); err != nil {
		n.logf("cluster: %s persist meta: %v", n.cfg.Self, err)
	}
}

// Route reports this node's view of the cluster.
func (n *Node) Route() *wire.RouteInfo {
	marks := n.memory().SyncedLSNs()
	n.mu.Lock()
	defer n.mu.Unlock()
	ri := &wire.RouteInfo{
		Epoch:            n.epoch,
		Self:             n.cfg.Self,
		Role:             n.role,
		Leader:           n.leader,
		Marks:            marks,
		LeaseRemainingMS: -1,
	}
	if n.role == RolePrimary {
		ri.Nodes = append(ri.Nodes, wire.RouteNode{Addr: n.cfg.Self, Role: RolePrimary})
		peers := make([]string, 0, len(n.replicas))
		for addr := range n.replicas {
			peers = append(peers, addr)
		}
		sort.Strings(peers)
		for _, addr := range peers {
			ri.Nodes = append(ri.Nodes, wire.RouteNode{Addr: addr, Role: RoleReplica})
		}
	} else {
		if n.leader != "" {
			ri.Nodes = append(ri.Nodes, wire.RouteNode{Addr: n.leader, Role: RolePrimary})
		}
		ri.Nodes = append(ri.Nodes, wire.RouteNode{Addr: n.cfg.Self, Role: n.role})
		remaining := n.cfg.Lease - time.Since(n.lastContact)
		if remaining < 0 {
			remaining = 0
		}
		ri.LeaseRemainingMS = remaining.Milliseconds()
	}
	// Full replication: every shard is served by the leader, Nodes[0]
	// whenever it is known — except shards migrated to another node,
	// which the map points at their new home.
	if len(ri.Nodes) > 0 && ri.Nodes[0].Role == RolePrimary {
		ri.ShardNodes = make([]int, len(marks))
		for shard, to := range n.migratedTo {
			if shard < 0 || shard >= len(ri.ShardNodes) {
				continue
			}
			idx := -1
			for i, node := range ri.Nodes {
				if node.Addr == to {
					idx = i
					break
				}
			}
			if idx < 0 {
				idx = len(ri.Nodes)
				ri.Nodes = append(ri.Nodes, wire.RouteNode{Addr: to, Role: RoleReplica})
			}
			ri.ShardNodes[shard] = idx
		}
	}
	return ri
}
