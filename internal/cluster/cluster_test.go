package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/securemem/morphtree/internal/durable"
	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/server"
	"github.com/securemem/morphtree/internal/shard"
	"github.com/securemem/morphtree/internal/wire"
)

var testKey = []byte("0123456789abcdef")

func testShardCfg(t testing.TB, shards int, memBytes uint64) shard.Config {
	t.Helper()
	enc, tree, err := shard.Organization("morph128")
	if err != nil {
		t.Fatal(err)
	}
	return shard.Config{
		Shards: shards,
		Mem: secmem.Config{
			MemoryBytes: memBytes,
			Enc:         enc,
			Tree:        tree,
			Key:         testKey,
		},
	}
}

func fill(addr, seq uint64) []byte {
	line := make([]byte, secmem.LineBytes)
	for i := 0; i < secmem.LineBytes; i += 16 {
		binary.LittleEndian.PutUint64(line[i:], addr^seq)
		binary.LittleEndian.PutUint64(line[i+8:], seq*0x9e3779b97f4a7c15+uint64(i))
	}
	return line
}

// testNode is one in-process cluster member served over loopback.
type testNode struct {
	addr   string
	node   *Node
	cancel context.CancelFunc
	done   chan struct{}
}

// tuned returns the fast-timing Config shared by the loopback tests.
func tuned(self string) Config {
	return Config{
		Self:        self,
		Lease:       150 * time.Millisecond,
		AckTimeout:  2 * time.Second,
		PollWait:    30 * time.Millisecond,
		PollRetry:   5 * time.Millisecond,
		DialTimeout: time.Second,
	}
}

func testDCfg(t *testing.T) durable.Config {
	return durable.Config{Dir: t.TempDir(), Sync: durable.SyncAlways}
}

// startNode opens a cluster node on a fresh loopback listener and serves
// it. The listener is created first so the advertised address is known
// before Open.
func startNode(t *testing.T, shcfg shard.Config, dcfg durable.Config, mutate func(*Config)) *testNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := tuned(ln.Addr().String())
	mutate(&cfg)
	n, err := Open(shcfg, dcfg, cfg)
	if err != nil {
		_ = ln.Close()
		t.Fatal(err)
	}
	srv := server.New(n, server.Config{Cluster: n, ReadTimeout: 2 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, ln)
	}()
	tn := &testNode{addr: cfg.Self, node: n, cancel: cancel, done: done}
	t.Cleanup(func() { tn.kill(); _ = n.Close() })
	return tn
}

// kill stops serving (the node object stays alive for inspection).
func (tn *testNode) kill() {
	tn.node.Halt() // unblock ack waiters before the drain
	tn.cancel()
	<-tn.done
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func covers(marks, min []uint64) bool {
	for i := range min {
		if marks[i] < min[i] {
			return false
		}
	}
	return true
}

func maxMarks(a, b []uint64) []uint64 {
	out := append([]uint64(nil), a...)
	for i := range out {
		if i < len(b) && b[i] > out[i] {
			out[i] = b[i]
		}
	}
	return out
}

// TestClusterReplicationEndToEnd: writes acknowledged by the primary
// appear, bit-for-bit, on both followers' verified engines.
func TestClusterReplicationEndToEnd(t *testing.T) {
	shcfg := testShardCfg(t, 2, 1<<13)
	p := startNode(t, shcfg, testDCfg(t), func(c *Config) { c.Primary = true; c.AckReplicas = 1 })
	a := startNode(t, shcfg, testDCfg(t), func(c *Config) { c.Leader = p.addr })
	b := startNode(t, shcfg, testDCfg(t), func(c *Config) { c.Leader = p.addr })

	cl, err := wire.Dial(p.addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const writes = 24
	for i := uint64(0); i < writes; i++ {
		addr := (i % 16) * secmem.LineBytes
		if err := cl.Write(addr, fill(addr, i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}

	want := p.node.memory().SyncedLSNs()
	for _, follower := range []*testNode{a, b} {
		waitFor(t, "follower catch-up", func() bool {
			return covers(follower.node.memory().SyncedLSNs(), want)
		})
		// The replicated state must be verifiable and byte-identical.
		if err := follower.node.VerifyAll(); err != nil {
			t.Fatalf("replica VerifyAll: %v", err)
		}
		for i := uint64(writes - 16); i < writes; i++ {
			addr := (i % 16) * secmem.LineBytes
			got, err := follower.node.memory().Read(addr)
			if err != nil {
				t.Fatalf("replica read %#x: %v", addr, err)
			}
			lastSeq := i
			for j := i + 1; j < writes; j++ {
				if (j % 16) == (i % 16) {
					lastSeq = j
				}
			}
			if string(got) != string(fill(addr, lastSeq)) {
				t.Fatalf("replica line %#x diverged from primary", addr)
			}
		}
	}

	// The route map from the primary names both pollers.
	ri, err := cl.Route()
	if err != nil {
		t.Fatal(err)
	}
	if ri.Role != RolePrimary || ri.Leader != p.addr || len(ri.Nodes) != 3 {
		t.Fatalf("primary route = %+v", ri)
	}
}

// TestClusterFailoverPreservesAckedWrites: kill the primary mid-load,
// promote the best survivor, and every acknowledged write must be
// readable on the new primary.
func TestClusterFailoverPreservesAckedWrites(t *testing.T) {
	shcfg := testShardCfg(t, 2, 1<<13)
	p := startNode(t, shcfg, testDCfg(t), func(c *Config) { c.Primary = true; c.AckReplicas = 1 })
	a := startNode(t, shcfg, testDCfg(t), func(c *Config) { c.Leader = p.addr })
	b := startNode(t, shcfg, testDCfg(t), func(c *Config) { c.Leader = p.addr })
	a.node.SetPeers([]string{p.addr, b.addr})
	b.node.SetPeers([]string{p.addr, a.addr})

	rc := wire.NewResilient(wire.ResilientConfig{
		Addrs:       []string{p.addr, a.addr, b.addr},
		Timeout:     time.Second,
		MaxAttempts: 30,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		RetryWrites: true,
		Seed:        7,
	})
	defer rc.Close()

	acked := map[uint64]uint64{} // line addr -> last acked seq
	const before = 30
	for i := uint64(0); i < before; i++ {
		addr := (i % 16) * secmem.LineBytes
		if err := rc.Write(addr, fill(addr, i)); err != nil {
			t.Fatalf("pre-kill write %d: %v", i, err)
		}
		acked[addr] = i
	}

	p.kill()
	time.Sleep(200 * time.Millisecond) // let the lease expire

	// Control plane: survey survivors, promote the most caught-up one.
	ra, rb := a.node.Route(), b.node.Route()
	min := maxMarks(ra.Marks, rb.Marks)
	candidate, other := a, b
	if !covers(ra.Marks, min) {
		candidate, other = b, a
	}
	if _, err := candidate.node.Promote(2, min); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if err := other.node.Follow(2, candidate.addr); err != nil {
		t.Fatalf("follow: %v", err)
	}

	// Clients keep writing through the failover.
	for i := uint64(before); i < before+20; i++ {
		addr := (i % 16) * secmem.LineBytes
		if err := rc.Write(addr, fill(addr, i)); err != nil {
			t.Fatalf("post-kill write %d: %v", i, err)
		}
		acked[addr] = i
	}
	// Dial-failure rotation may land straight on the new primary, so the
	// shared client only proves liveness; a client seeded with the deposed
	// follower alone must be redirected by its MovedError.
	if st := rc.Counters(); st.Reroutes == 0 && st.Reconnects == 0 {
		t.Fatalf("failover without any reroute or reconnect: %+v", st)
	}
	rc2 := wire.NewResilient(wire.ResilientConfig{
		Addrs:       []string{other.addr},
		Timeout:     time.Second,
		MaxAttempts: 10,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		RetryWrites: true,
	})
	defer rc2.Close()
	{
		addr := uint64(0)
		seq := uint64(before + 20)
		if err := rc2.Write(addr, fill(addr, seq)); err != nil {
			t.Fatalf("write via deposed follower: %v", err)
		}
		acked[addr] = seq
	}
	if st := rc2.Counters(); st.Reroutes == 0 {
		t.Fatalf("moved redirect did not count as reroute: %+v", st)
	}
	if got := rc2.Target(); got != candidate.addr {
		t.Fatalf("rerouted target = %s, want new primary %s", got, candidate.addr)
	}

	// Every acked write is on the new primary, verified.
	if err := candidate.node.VerifyAll(); err != nil {
		t.Fatalf("new primary VerifyAll: %v", err)
	}
	for addr, seq := range acked {
		got, err := rc.Read(addr)
		if err != nil {
			t.Fatalf("read-back %#x: %v", addr, err)
		}
		if string(got) != string(fill(addr, seq)) {
			t.Fatalf("acked write lost at %#x (want seq %d)", addr, seq)
		}
	}
}

// TestClusterPromoteCatchUpFromDonor: a lagging candidate must pull the
// missing WAL suffix from a donor replica before assuming leadership.
func TestClusterPromoteCatchUpFromDonor(t *testing.T) {
	shcfg := testShardCfg(t, 2, 1<<13)
	p := startNode(t, shcfg, testDCfg(t), func(c *Config) { c.Primary = true; c.AckReplicas = 1 })
	a := startNode(t, shcfg, testDCfg(t), func(c *Config) { c.Leader = p.addr })
	// B follows a dead address, so it never replicates anything itself.
	b := startNode(t, shcfg, testDCfg(t), func(c *Config) {
		c.Leader = "127.0.0.1:1"
		c.Peers = []string{a.addr}
	})

	cl, err := wire.Dial(p.addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := uint64(0); i < 20; i++ {
		addr := (i % 8) * secmem.LineBytes
		if err := cl.Write(addr, fill(addr, i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	min := p.node.memory().SyncedLSNs()
	waitFor(t, "donor catch-up", func() bool {
		return covers(a.node.memory().SyncedLSNs(), min)
	})
	p.kill()
	time.Sleep(200 * time.Millisecond)

	if covers(b.node.memory().SyncedLSNs(), min) {
		t.Fatal("test broken: candidate is not behind")
	}
	if _, err := b.node.Promote(2, min); err != nil {
		t.Fatalf("promote with catch-up: %v", err)
	}
	if !covers(b.node.memory().SyncedLSNs(), min) {
		t.Fatalf("promoted below minMarks: %v < %v", b.node.memory().SyncedLSNs(), min)
	}
	if err := b.node.VerifyAll(); err != nil {
		t.Fatalf("caught-up candidate VerifyAll: %v", err)
	}
	// And the caught-up content matches the dead primary's final state.
	for i := uint64(12); i < 20; i++ {
		addr := (i % 8) * secmem.LineBytes
		got, err := b.node.Read(addr)
		if err != nil {
			t.Fatalf("read %#x on new primary: %v", addr, err)
		}
		if string(got) != string(fill(addr, i)) {
			t.Fatalf("line %#x lost in catch-up", addr)
		}
	}
}

// TestClusterSnapshotBootstrap: a follower whose cursor predates the
// primary's retained log gets a full snapshot, then streams normally.
func TestClusterSnapshotBootstrap(t *testing.T) {
	shcfg := testShardCfg(t, 2, 1<<13)
	// A tiny replication ring plus a checkpoint evicts the history a
	// zero-cursor replica would need: the ring no longer reaches LSN 1 and
	// the checkpoint truncated the on-disk segment, so only a snapshot can
	// serve the cursor.
	pd := testDCfg(t)
	pd.ReplHistory = 4
	p := startNode(t, shcfg, pd, func(c *Config) { c.Primary = true })

	cl, err := wire.Dial(p.addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := uint64(0); i < 20; i++ {
		addr := (i % 8) * secmem.LineBytes
		if err := cl.Write(addr, fill(addr, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.node.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	a := startNode(t, shcfg, testDCfg(t), func(c *Config) {
		c.Leader = p.addr
		c.Obs = reg
	})
	min := p.node.memory().SyncedLSNs()
	waitFor(t, "bootstrap + catch-up", func() bool {
		return covers(a.node.memory().SyncedLSNs(), min)
	})
	if got := a.node.cBootstraps.Value(); got != 1 {
		t.Fatalf("bootstraps = %d, want 1", got)
	}
	// Streaming still works after the bootstrap.
	if err := cl.Write(0, fill(0, 999)); err != nil {
		t.Fatal(err)
	}
	min = p.node.memory().SyncedLSNs()
	waitFor(t, "post-bootstrap streaming", func() bool {
		return covers(a.node.memory().SyncedLSNs(), min)
	})
	got, err := a.node.memory().Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(fill(0, 999)) {
		t.Fatal("post-bootstrap write did not replicate")
	}
	if err := a.node.VerifyAll(); err != nil {
		t.Fatalf("bootstrapped replica VerifyAll: %v", err)
	}
}

// --- unit-level role/fencing tests (no servers) -----------------------

// openBare opens a node without serving it.
func openBare(t *testing.T, shcfg shard.Config, dir string, mutate func(*Config)) *Node {
	t.Helper()
	cfg := tuned("127.0.0.1:9")
	mutate(&cfg)
	n, err := Open(shcfg, durable.Config{Dir: dir, Sync: durable.SyncAlways}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

func TestReplicaRefusesDataOps(t *testing.T) {
	shcfg := testShardCfg(t, 2, 1<<13)
	n := openBare(t, shcfg, t.TempDir(), func(c *Config) { c.Leader = "127.0.0.1:1" })
	err := n.Write(0, fill(0, 1))
	var me *wire.MovedError
	if !errors.As(err, &me) || me.Leader != "127.0.0.1:1" || me.Epoch != 1 {
		t.Fatalf("replica write err = %v, want MovedError naming the leader", err)
	}
	if _, err := n.Read(0); !wire.IsMoved(err) {
		t.Fatalf("replica read err = %v, want moved", err)
	}
	if n.FlipDataBit(0, 0, 1) {
		t.Fatal("replica honored tamper")
	}
}

func TestAckTimeoutIsTyped(t *testing.T) {
	shcfg := testShardCfg(t, 2, 1<<13)
	n := openBare(t, shcfg, t.TempDir(), func(c *Config) {
		c.Primary = true
		c.AckReplicas = 1
		c.AckTimeout = 50 * time.Millisecond
	})
	err := n.Write(0, fill(0, 1))
	var ate *AckTimeoutError
	if !errors.As(err, &ate) {
		t.Fatalf("err = %v, want AckTimeoutError", err)
	}
	if ate.Need != 1 || ate.Have != 0 {
		t.Fatalf("ack detail = %+v", ate)
	}
	// The write is still locally durable despite the failed ack.
	if got, err := n.memory().Read(0); err != nil || string(got) != string(fill(0, 1)) {
		t.Fatalf("locally durable write unreadable: %v", err)
	}
}

func TestHigherEpochPollFences(t *testing.T) {
	shcfg := testShardCfg(t, 2, 1<<13)
	n := openBare(t, shcfg, t.TempDir(), func(c *Config) { c.Primary = true })
	_, err := n.Replicate(&wire.ReplicateRequest{Epoch: 5, Node: "x", Marks: []uint64{0, 0}})
	if !wire.IsMoved(err) {
		t.Fatalf("higher-epoch poll answered %v, want moved", err)
	}
	err = n.Write(0, fill(0, 1))
	var me *wire.MovedError
	if !errors.As(err, &me) || me.Epoch != 5 || me.Leader != "" {
		t.Fatalf("fenced write err = %v, want leaderless moved at epoch 5", err)
	}
	if ri := n.Route(); ri.Role != RoleFenced || ri.Epoch != 5 {
		t.Fatalf("route after fence = %+v", ri)
	}
}

func TestStaleEpochPollRefused(t *testing.T) {
	shcfg := testShardCfg(t, 2, 1<<13)
	n := openBare(t, shcfg, t.TempDir(), func(c *Config) { c.Primary = true; c.Epoch = 5 })
	_, err := n.Replicate(&wire.ReplicateRequest{Epoch: 1, Node: "x", Marks: []uint64{0, 0}})
	var me *wire.MovedError
	if !errors.As(err, &me) || me.Epoch != 5 {
		t.Fatalf("stale poll err = %v, want moved at epoch 5", err)
	}
	if ri := n.Route(); ri.Role != RolePrimary {
		t.Fatal("stale poll must not fence the primary")
	}
}

func TestPromoteRefusedWhileLeaseFresh(t *testing.T) {
	shcfg := testShardCfg(t, 2, 1<<13)
	n := openBare(t, shcfg, t.TempDir(), func(c *Config) {
		c.Leader = "127.0.0.1:1"
		c.Lease = time.Hour
	})
	_, err := n.Promote(2, []uint64{0, 0})
	var le *LeaseError
	if !errors.As(err, &le) || le.Remaining <= 0 {
		t.Fatalf("promote err = %v, want LeaseError with remaining time", err)
	}
}

func TestFollowDeposesPrimary(t *testing.T) {
	shcfg := testShardCfg(t, 2, 1<<13)
	n := openBare(t, shcfg, t.TempDir(), func(c *Config) { c.Primary = true })
	if err := n.Write(0, fill(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := n.Follow(2, "127.0.0.1:2"); err != nil {
		t.Fatal(err)
	}
	ri := n.Route()
	if ri.Role != RoleReplica || ri.Epoch != 2 || ri.Leader != "127.0.0.1:2" {
		t.Fatalf("route after depose = %+v", ri)
	}
	if !wire.IsMoved(n.Write(0, fill(0, 2))) {
		t.Fatal("deposed primary still accepts writes")
	}
	n.mu.Lock()
	bootstrap := n.bootstrap
	n.mu.Unlock()
	if !bootstrap {
		t.Fatal("deposed primary must rejoin via snapshot bootstrap")
	}
	// A stale Follow cannot drag it back.
	if err := n.Follow(1, "127.0.0.1:3"); !wire.IsMoved(err) {
		t.Fatalf("stale follow answered %v, want moved", err)
	}
}

func TestMetaPersistsDeposedEpoch(t *testing.T) {
	shcfg := testShardCfg(t, 2, 1<<13)
	dir := t.TempDir()
	n := openBare(t, shcfg, dir, func(c *Config) { c.Primary = true })
	if _, err := n.Replicate(&wire.ReplicateRequest{Epoch: 7, Node: "x", Marks: []uint64{0, 0}}); !wire.IsMoved(err) {
		t.Fatal("fencing poll must answer moved")
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	// Restarted with its old primary flags, the node must come back
	// fenced at the epoch that deposed it — not leading at epoch 1.
	re, err := Open(shcfg, durable.Config{Dir: dir, Sync: durable.SyncAlways}, func() Config {
		c := tuned("127.0.0.1:9")
		c.Primary = true
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ri := re.Route()
	if ri.Role == RolePrimary || ri.Epoch != 7 {
		t.Fatalf("restarted deposed primary came back as %s at epoch %d", ri.Role, ri.Epoch)
	}
}

func TestPromoteIdempotent(t *testing.T) {
	shcfg := testShardCfg(t, 2, 1<<13)
	n := openBare(t, shcfg, t.TempDir(), func(c *Config) {
		c.Leader = "127.0.0.1:1"
		c.Lease = time.Nanosecond
	})
	time.Sleep(time.Millisecond)
	if _, err := n.Promote(2, []uint64{0, 0}); err != nil {
		t.Fatal(err)
	}
	ri, err := n.Promote(2, []uint64{0, 0})
	if err != nil {
		t.Fatalf("re-sent promote: %v", err)
	}
	if ri.Role != RolePrimary || ri.Epoch != 2 {
		t.Fatalf("route = %+v", ri)
	}
	if err := n.Write(0, fill(0, 1)); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
}

// TestServerRefusesClusterOpsWithoutCluster: the four control ops answer
// a plain error on a non-cluster server instead of hanging or panicking.
func TestServerRefusesClusterOpsWithoutCluster(t *testing.T) {
	shcfg := testShardCfg(t, 1, 1<<12)
	sh, err := shard.New(shcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(sh, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(ctx, ln) }()
	defer func() { cancel(); <-done }()

	cl, err := wire.Dial(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Route(); err == nil {
		t.Fatal("route on non-cluster server succeeded")
	} else if wire.IsMoved(err) || wire.IsShed(err) {
		t.Fatalf("route err misclassified: %v", err)
	}
	var re *wire.RemoteError
	if _, err := cl.Replicate(&wire.ReplicateRequest{Epoch: 1, Marks: []uint64{0}}); !errors.As(err, &re) {
		t.Fatalf("replicate err = %v, want RemoteError", err)
	}
}

// TestAckUnblocksOnPoll: a write blocked on replication cover completes
// the moment a follower's poll advances its marks past the LSN.
func TestAckUnblocksOnPoll(t *testing.T) {
	shcfg := testShardCfg(t, 2, 1<<13)
	n := openBare(t, shcfg, t.TempDir(), func(c *Config) {
		c.Primary = true
		c.AckReplicas = 1
	})
	wrote := make(chan error, 1)
	go func() { wrote <- n.Write(0, fill(0, 1)) }()

	// Pump the follower protocol by hand until the write acks.
	marks := make([]uint64, 2)
	deadline := time.Now().Add(3 * time.Second)
	for {
		select {
		case err := <-wrote:
			if err != nil {
				t.Fatalf("acked write: %v", err)
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("write never acked despite follower polls")
		}
		resp, err := n.Replicate(&wire.ReplicateRequest{Epoch: 1, Node: "follower", Marks: marks})
		if err != nil {
			t.Fatal(err)
		}
		// The simulated follower is perfectly caught up to whatever the
		// primary has durable.
		copy(marks, resp.Marks)
	}
}

func ExampleNode_Route() {
	// Route output is JSON over the wire; shown here for shape only.
	fmt.Println("epoch, self, role, leader, nodes, marks, lease_remaining_ms")
	// Output: epoch, self, role, leader, nodes, marks, lease_remaining_ms
}
