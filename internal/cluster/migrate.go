package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/securemem/morphtree/internal/durable"
	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/wal"
	"github.com/securemem/morphtree/internal/wire"
)

// Live shard migration: the primary (donor) hands one shard to a replica
// (recipient) while serving load. The recipient drives the protocol —
// the control plane only sends it MigrateRun naming the donor:
//
//	Begin    donor freezes the shard briefly, spills its authenticated
//	         state to a local file, answers (mark, size)
//	Chunk*   recipient streams the spill down in bounded chunks
//	install  recipient verifies the whole stream and adopts it at mark
//	Tail*    recipient applies sealed WAL records past its cursor while
//	         the donor keeps serving writes
//	Cutover  donor fences the shard: writes start answering the MOVED
//	         redirect naming the recipient; answers the final LSN
//	Tail*    recipient drains the last records up to the final LSN
//	ckpt     recipient cuts a full local checkpoint — the migrated shard
//	         is now durable on its own disks — and starts serving it
//
// A crash or error anywhere before the recipient's checkpoint aborts the
// migration: the donor unfences on Abort (or keeps serving after its own
// restart, since fencing is in-memory), and the recipient re-bootstraps
// its possibly half-installed state from the leader. No acknowledged
// write is lost in either direction — writes acked by the donor are in
// its journal and ship through Tail; writes acked by the recipient only
// begin after its cut-over checkpoint made the shard durable locally.

// migChunkBytes is the spill transfer chunk size.
const migChunkBytes = 256 << 10

// migSpillName names the donor's local spill file for a shard.
func migSpillName(shard uint32) string {
	return fmt.Sprintf("migrate.spill.%04d", shard)
}

// migState tracks one side of an in-flight migration on a node.
type migState struct {
	shard     int
	spillPath string // donor: local spill file
	mark      uint64 // donor: LSN the spill covers
	size      uint64 // donor: spill byte size
}

// MigratedError reports a data op that touched a shard this node does not
// serve anymore (donor side, post-cutover) or does not serve yet.
type MigratedError struct {
	Shard int
	To    string
}

func (e *MigratedError) Error() string {
	return fmt.Sprintf("cluster: shard %d migrated to %s", e.Shard, e.To)
}

// Migrate serves the donor-side phases (and Run, the recipient-side
// kick). Donor phases follow replication's epoch discipline: a higher
// epoch fences this node, a lower one is refused with the redirect.
func (n *Node) Migrate(req *wire.MigrateRequest) (*wire.MigrateResponse, error) {
	if req.Phase == wire.MigrateRun {
		return n.migrateRun(req)
	}
	n.mu.Lock()
	if req.Epoch > n.epoch {
		n.fenceLocked(req.Epoch)
		err := n.movedLocked()
		n.mu.Unlock()
		return nil, err
	}
	if req.Epoch < n.epoch || n.role != RolePrimary {
		err := n.movedLocked()
		n.mu.Unlock()
		return nil, err
	}
	mem := n.mem
	epoch := n.epoch
	n.mu.Unlock()

	if int(req.Shard) >= mem.NumShards() {
		return nil, fmt.Errorf("cluster: migrate shard %d, node has %d shards", req.Shard, mem.NumShards())
	}
	switch req.Phase {
	case wire.MigrateBegin:
		return n.migrateBegin(mem, epoch, req)
	case wire.MigrateChunk:
		return n.migrateChunk(epoch, req)
	case wire.MigrateTail:
		return n.migrateTail(mem, epoch, req)
	case wire.MigrateCutover:
		return n.migrateCutover(mem, epoch, req)
	case wire.MigrateAbort:
		return n.migrateAbort(mem, epoch, req)
	}
	return nil, fmt.Errorf("cluster: unknown migrate phase %#x", req.Phase)
}

// migrateBegin spills the shard to a local file. The freeze lasts only as
// long as the local sequential write; clients see one long write-latency
// blip on that shard, not a stall.
func (n *Node) migrateBegin(mem *durable.Memory, epoch uint64, req *wire.MigrateRequest) (*wire.MigrateResponse, error) {
	n.mu.Lock()
	if n.migOut != nil && n.migOut.shard != int(req.Shard) {
		err := fmt.Errorf("cluster: migration of shard %d already in flight", n.migOut.shard)
		n.mu.Unlock()
		return nil, err
	}
	n.mu.Unlock()

	path := filepath.Join(n.dcfg.Dir, migSpillName(req.Shard))
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: create spill: %w", err)
	}
	mark, err := mem.SaveShardStream(int(req.Shard), f)
	if err != nil {
		_ = f.Close()
		_ = os.Remove(path)
		return nil, err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(path)
		return nil, fmt.Errorf("cluster: close spill: %w", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.migOut = &migState{shard: int(req.Shard), spillPath: path, mark: mark, size: uint64(st.Size())}
	n.mu.Unlock()
	n.cfg.Tracer.Emit(obs.KindMigrateBegin, int32(req.Shard), mark, uint64(st.Size()), 0)
	n.logf("cluster: %s migration of shard %d to %s began (mark %d, spill %d bytes)",
		n.cfg.Self, req.Shard, req.Node, mark, st.Size())
	return &wire.MigrateResponse{Epoch: epoch, Mark: mark, Size: uint64(st.Size())}, nil
}

// migrateChunk serves spill bytes [Cursor, Cursor+migChunkBytes).
func (n *Node) migrateChunk(epoch uint64, req *wire.MigrateRequest) (*wire.MigrateResponse, error) {
	n.mu.Lock()
	mig := n.migOut
	n.mu.Unlock()
	if mig == nil || mig.shard != int(req.Shard) {
		return nil, fmt.Errorf("cluster: no migration in flight for shard %d", req.Shard)
	}
	f, err := os.Open(mig.spillPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if req.Cursor > mig.size {
		return nil, fmt.Errorf("cluster: spill cursor %d past size %d", req.Cursor, mig.size)
	}
	want := mig.size - req.Cursor
	if want > migChunkBytes {
		want = migChunkBytes
	}
	buf := make([]byte, want)
	if _, err := f.ReadAt(buf, int64(req.Cursor)); err != nil && want > 0 {
		return nil, fmt.Errorf("cluster: read spill at %d: %w", req.Cursor, err)
	}
	return &wire.MigrateResponse{
		Epoch: epoch, Mark: mig.mark, Size: mig.size,
		Data: buf, Done: req.Cursor+want == mig.size,
	}, nil
}

// migrateTail serves sealed WAL records past the recipient's cursor,
// exactly like a replication batch for one shard.
func (n *Node) migrateTail(mem *durable.Memory, epoch uint64, req *wire.MigrateRequest) (*wire.MigrateResponse, error) {
	max := int(req.Max)
	if max <= 0 || max > n.cfg.BatchRecords {
		max = n.cfg.BatchRecords
	}
	recs, ok, err := mem.ReadRecords(int(req.Shard), req.Cursor, max)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("cluster: migration tail cursor %d predates retained history", req.Cursor)
	}
	codec, err := n.codec(epoch, int(req.Shard))
	if err != nil {
		return nil, err
	}
	var batch []byte
	for _, rec := range recs {
		if batch, err = codec.AppendRecord(batch, rec); err != nil {
			return nil, err
		}
	}
	done := len(recs) < max
	return &wire.MigrateResponse{Epoch: epoch, Data: batch, Done: done}, nil
}

// migrateCutover fences the shard and records its new home. From here on
// the donor answers writes to the shard with the MOVED redirect naming
// the recipient; the response carries the final LSN the recipient must
// drain to before serving.
func (n *Node) migrateCutover(mem *durable.Memory, epoch uint64, req *wire.MigrateRequest) (*wire.MigrateResponse, error) {
	if req.Node == "" {
		return nil, fmt.Errorf("cluster: cutover needs the recipient's address")
	}
	final, err := mem.FenceShard(int(req.Shard))
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.migratedTo == nil {
		n.migratedTo = map[int]string{}
	}
	n.migratedTo[int(req.Shard)] = req.Node
	mig := n.migOut
	n.migOut = nil
	n.mu.Unlock()
	if mig != nil {
		_ = os.Remove(mig.spillPath)
	}
	n.cfg.Tracer.Emit(obs.KindMigrateCutover, int32(req.Shard), final, 0, 0)
	n.logf("cluster: %s cut shard %d over to %s (final LSN %d)", n.cfg.Self, req.Shard, req.Node, final)
	return &wire.MigrateResponse{Epoch: epoch, Mark: final}, nil
}

// migrateAbort discards the spill and unfences the shard.
func (n *Node) migrateAbort(mem *durable.Memory, epoch uint64, req *wire.MigrateRequest) (*wire.MigrateResponse, error) {
	n.mu.Lock()
	mig := n.migOut
	n.migOut = nil
	delete(n.migratedTo, int(req.Shard))
	n.mu.Unlock()
	if mig != nil {
		_ = os.Remove(mig.spillPath)
	}
	mem.UnfenceShard(int(req.Shard))
	n.logf("cluster: %s migration of shard %d aborted by %s", n.cfg.Self, req.Shard, req.Node)
	return &wire.MigrateResponse{Epoch: epoch}, nil
}

// migrateRun is the recipient-side kick: migrate req.Shard in from
// req.Donor. Runs synchronously; the OK response means the shard is
// installed, durable locally, and being served here.
func (n *Node) migrateRun(req *wire.MigrateRequest) (*wire.MigrateResponse, error) {
	if req.Donor == "" {
		return nil, fmt.Errorf("cluster: migrate run needs a donor address")
	}
	n.mu.Lock()
	if n.role != RoleReplica {
		err := fmt.Errorf("cluster: only a replica can receive a shard (role %s)", n.role)
		n.mu.Unlock()
		return nil, err
	}
	if n.migIn != nil {
		err := fmt.Errorf("cluster: already migrating shard %d in", n.migIn.shard)
		n.mu.Unlock()
		return nil, err
	}
	if n.bootstrap {
		n.mu.Unlock()
		return nil, fmt.Errorf("cluster: migrate refused: node needs a snapshot bootstrap first")
	}
	// The puller skips this shard's batches from here: replicated applies
	// racing the install would corrupt the adopted state.
	n.migIn = &migState{shard: int(req.Shard)}
	mem := n.mem
	epoch := n.epoch
	n.mu.Unlock()

	err := n.migrateFrom(mem, epoch, req.Donor, int(req.Shard))
	if err != nil {
		// Best-effort donor abort, then re-bootstrap: the install may have
		// half-landed, so local state for the shard is suspect until the
		// leader re-seeds it.
		n.abortDonor(req.Donor, epoch, req.Shard)
		n.mu.Lock()
		n.migIn = nil
		n.bootstrap = true
		n.mu.Unlock()
		return nil, err
	}
	n.mu.Lock()
	if n.owned == nil {
		n.owned = map[int]bool{}
	}
	n.owned[int(req.Shard)] = true
	n.migIn = nil
	n.mu.Unlock()
	n.cMigrations.Inc()
	return &wire.MigrateResponse{Epoch: epoch, Mark: mem.AppliedLSNs()[req.Shard]}, nil
}

// migrateFrom drives the donor-side phases from the recipient.
func (n *Node) migrateFrom(mem *durable.Memory, epoch uint64, donor string, shard int) error {
	start := time.Now()
	cl, err := wire.Dial(donor, n.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("cluster: dial donor: %w", err)
	}
	defer cl.Close()

	begin, err := cl.Migrate(&wire.MigrateRequest{
		Phase: wire.MigrateBegin, Epoch: epoch, Shard: uint32(shard), Node: n.cfg.Self,
	})
	if err != nil {
		return fmt.Errorf("cluster: migrate begin: %w", err)
	}

	// Stream the spill to a local file, then install from it. The spill is
	// authenticated end-to-end by the ckpt codec; a corrupted or truncated
	// transfer fails the install before any state is adopted.
	spill, err := os.CreateTemp(n.dcfg.Dir, "migrate.recv.*")
	if err != nil {
		return err
	}
	spillPath := spill.Name()
	defer os.Remove(spillPath)
	var off uint64
	for off < begin.Size {
		chunk, err := cl.Migrate(&wire.MigrateRequest{
			Phase: wire.MigrateChunk, Epoch: epoch, Shard: uint32(shard),
			Node: n.cfg.Self, Cursor: off,
		})
		if err != nil {
			_ = spill.Close()
			return fmt.Errorf("cluster: migrate chunk at %d: %w", off, err)
		}
		if len(chunk.Data) == 0 {
			_ = spill.Close()
			return fmt.Errorf("cluster: empty spill chunk at %d of %d", off, begin.Size)
		}
		if _, err := spill.Write(chunk.Data); err != nil {
			_ = spill.Close()
			return err
		}
		off += uint64(len(chunk.Data))
	}
	if _, err := spill.Seek(0, 0); err != nil {
		_ = spill.Close()
		return err
	}
	if err := mem.InstallShardStream(shard, spill, begin.Mark); err != nil {
		_ = spill.Close()
		return fmt.Errorf("cluster: install shard stream: %w", err)
	}
	_ = spill.Close()
	_ = os.Remove(spillPath)

	// Catch up the live tail, cut over once close, then drain to the
	// donor's final LSN.
	cursor, err := n.pullTail(cl, mem, epoch, shard, begin.Mark, 0)
	if err != nil {
		return err
	}
	cut, err := cl.Migrate(&wire.MigrateRequest{
		Phase: wire.MigrateCutover, Epoch: epoch, Shard: uint32(shard), Node: n.cfg.Self,
	})
	if err != nil {
		return fmt.Errorf("cluster: migrate cutover: %w", err)
	}
	if _, err := n.pullTail(cl, mem, epoch, shard, cursor, cut.Mark); err != nil {
		return err
	}
	if got := mem.AppliedLSNs()[shard]; got != cut.Mark {
		return fmt.Errorf("cluster: drained to LSN %d, donor cut at %d", got, cut.Mark)
	}

	// Cut-over checkpoint: one atomic epoch advance makes the whole
	// installed shard durable on local disks. Acked writes from here on
	// are this node's responsibility.
	if err := mem.Checkpoint(); err != nil {
		return fmt.Errorf("cluster: cut-over checkpoint: %w", err)
	}
	n.cfg.Tracer.Emit(obs.KindMigrateCutover, int32(shard), cut.Mark, 1, time.Since(start))
	n.logf("cluster: %s now serves shard %d (migrated from %s in %v)", n.cfg.Self, shard, donor, time.Since(start))
	return nil
}

// pullTail applies sealed tail batches until the donor reports the cursor
// exhausted (and, when final > 0, the cursor reaches final). Returns the
// cursor reached.
func (n *Node) pullTail(cl *wire.Client, mem *durable.Memory, epoch uint64, shard int, cursor, final uint64) (uint64, error) {
	for {
		resp, err := cl.Migrate(&wire.MigrateRequest{
			Phase: wire.MigrateTail, Epoch: epoch, Shard: uint32(shard),
			Node: n.cfg.Self, Cursor: cursor, Max: uint32(n.cfg.BatchRecords),
		})
		if err != nil {
			return cursor, fmt.Errorf("cluster: migrate tail at %d: %w", cursor, err)
		}
		if len(resp.Data) > 0 {
			codec, err := n.codec(epoch, shard)
			if err != nil {
				return cursor, err
			}
			recs := make([]wal.Record, 0, n.cfg.BatchRecords)
			if _, err := codec.DecodeAll(resp.Data, cursor+1, func(r wal.Record) error {
				recs = append(recs, r)
				return nil
			}); err != nil {
				return cursor, fmt.Errorf("cluster: tail batch: %w", err)
			}
			n.cfg.Tracer.Emit(obs.KindMigrateTail, int32(shard), uint64(len(recs)), cursor, 0)
			if err := mem.ApplyMigrated(shard, recs); err != nil {
				return cursor, err
			}
			cursor = recs[len(recs)-1].LSN
		}
		if final > 0 && cursor >= final {
			return cursor, nil
		}
		if resp.Done && (final == 0 || cursor >= final) {
			return cursor, nil
		}
		if resp.Done && len(resp.Data) == 0 && final > 0 {
			return cursor, fmt.Errorf("cluster: tail dried up at LSN %d below final %d", cursor, final)
		}
	}
}

// abortDonor best-effort tells the donor to unfence and discard.
func (n *Node) abortDonor(donor string, epoch uint64, shard uint32) {
	cl, err := wire.Dial(donor, n.cfg.DialTimeout)
	if err != nil {
		return
	}
	defer cl.Close()
	_, _ = cl.Migrate(&wire.MigrateRequest{
		Phase: wire.MigrateAbort, Epoch: epoch, Shard: shard, Node: n.cfg.Self,
	})
}

// shardFor locates addr's shard (for routing decisions); -1 when invalid.
func (n *Node) shardFor(mem *durable.Memory, addr uint64) int {
	idx, _, err := mem.Sharded().Locate(addr)
	if err != nil {
		return -1
	}
	return idx
}

// routeShardLocked answers where a data op on shard should go, given this
// node's migration state. Returns nil when the op should run locally.
// Called with n.mu held.
func (n *Node) routeShardLocked(shard int) error {
	if n.role == RolePrimary {
		if to, ok := n.migratedTo[shard]; ok {
			return &wire.MovedError{Epoch: n.epoch, Leader: to}
		}
		return nil
	}
	if n.owned[shard] {
		return nil
	}
	return n.movedLocked()
}

// translateFenced rewrites the durable layer's fenced-shard refusal into
// the MOVED redirect naming the shard's new home (a write can slip past
// routing into a shard fenced an instant later).
func (n *Node) translateFenced(err error) error {
	var fe *durable.ShardFencedError
	if !errors.As(err, &fe) {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if to, ok := n.migratedTo[fe.Shard]; ok {
		return &wire.MovedError{Epoch: n.epoch, Leader: to}
	}
	return n.movedLocked()
}
