package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/wire"
)

// shard1Addr maps line index i to an address on shard 1 (addr%shards
// picks the shard for 2-shard configs: odd line indices land on shard 1).
func shard1Addr(i uint64) uint64 {
	return (2*i + 1) * secmem.LineBytes
}

// shard0Addr maps line index i to an address on shard 0.
func shard0Addr(i uint64) uint64 {
	return (2 * i) * secmem.LineBytes
}

// runMigration kicks recipient into migrating shard in from donor.
func runMigration(t *testing.T, recipient, donor string, shard uint32) *wire.MigrateResponse {
	t.Helper()
	cl, err := wire.Dial(recipient, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Migrate(&wire.MigrateRequest{
		Phase: wire.MigrateRun, Epoch: 1, Shard: shard, Donor: donor,
	})
	if err != nil {
		t.Fatalf("migrate run: %v", err)
	}
	return resp
}

// TestMigrateShardRouting: after a migration, the donor redirects the
// shard's ops to the recipient, the recipient serves them bit-for-bit,
// and ops on the other shard still belong to the primary.
func TestMigrateShardRouting(t *testing.T) {
	shcfg := testShardCfg(t, 2, 1<<13)
	p := startNode(t, shcfg, testDCfg(t), func(c *Config) { c.Primary = true })
	r := startNode(t, shcfg, testDCfg(t), func(c *Config) { c.Leader = p.addr })

	cl, err := wire.Dial(p.addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const lines = 16
	for i := uint64(0); i < lines; i++ {
		if err := cl.Write(shard1Addr(i), fill(shard1Addr(i), i)); err != nil {
			t.Fatal(err)
		}
		if err := cl.Write(shard0Addr(i), fill(shard0Addr(i), i)); err != nil {
			t.Fatal(err)
		}
	}

	resp := runMigration(t, r.addr, p.addr, 1)
	if resp.Mark == 0 {
		t.Fatal("migration finished at mark 0")
	}

	// Donor: shard-1 ops answer the redirect naming the recipient.
	_, err = p.node.Read(shard1Addr(3))
	var me *wire.MovedError
	if !errors.As(err, &me) || me.Leader != r.addr {
		t.Fatalf("donor read of migrated shard: got %v, want MovedError to %s", err, r.addr)
	}
	err = p.node.Write(shard1Addr(3), fill(shard1Addr(3), 99))
	if !errors.As(err, &me) || me.Leader != r.addr {
		t.Fatalf("donor write to migrated shard: got %v, want MovedError to %s", err, r.addr)
	}
	// Donor still serves the other shard.
	if err := p.node.Write(shard0Addr(3), fill(shard0Addr(3), 99)); err != nil {
		t.Fatalf("donor write to retained shard: %v", err)
	}

	// Recipient: serves the migrated shard bit-for-bit, redirects the rest.
	for i := uint64(0); i < lines; i++ {
		got, err := r.node.Read(shard1Addr(i))
		if err != nil {
			t.Fatalf("recipient read %#x: %v", shard1Addr(i), err)
		}
		if string(got) != string(fill(shard1Addr(i), i)) {
			t.Fatalf("line %#x diverged across migration", shard1Addr(i))
		}
	}
	if _, err := r.node.Read(shard0Addr(3)); !errors.As(err, &me) || me.Leader != p.addr {
		t.Fatalf("recipient read of unowned shard: got %v, want MovedError to %s", err, p.addr)
	}
	// Writes to the migrated shard ack on the recipient, and its verified
	// tree stays honest.
	if err := r.node.Write(shard1Addr(5), fill(shard1Addr(5), 100)); err != nil {
		t.Fatalf("recipient write: %v", err)
	}
	if err := r.node.VerifyAll(); err != nil {
		t.Fatal(err)
	}

	// The donor's route map points the migrated shard at the recipient.
	ri, err := cl.Route()
	if err != nil {
		t.Fatal(err)
	}
	if len(ri.ShardNodes) != 2 || ri.Nodes[ri.ShardNodes[1]].Addr != r.addr {
		t.Fatalf("route after migration = %+v", ri)
	}
	if ri.Nodes[ri.ShardNodes[0]].Addr != p.addr {
		t.Fatalf("route lost the retained shard: %+v", ri)
	}

	// Tamper on the migrated shard is detected by the recipient's tree.
	if !r.node.FlipDataBit(shard1Addr(7), 3, 5) {
		t.Fatal("recipient refused tamper on its owned shard")
	}
	var ie *secmem.IntegrityError
	if _, err := r.node.Read(shard1Addr(7)); !errors.As(err, &ie) {
		t.Fatalf("tampered migrated line read: got %v, want IntegrityError", err)
	}
}

// TestMigrateUnderLoad: a client hammers the migrating shard through the
// whole hand-off; every acknowledged write must be readable afterwards
// with the acknowledged content, and none may fail integrity.
func TestMigrateUnderLoad(t *testing.T) {
	shcfg := testShardCfg(t, 2, 1<<13)
	p := startNode(t, shcfg, testDCfg(t), func(c *Config) { c.Primary = true })
	r := startNode(t, shcfg, testDCfg(t), func(c *Config) { c.Leader = p.addr })

	rc := wire.NewResilient(wire.ResilientConfig{
		Addrs:       []string{p.addr, r.addr},
		Timeout:     2 * time.Second,
		MaxAttempts: 40,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		RetryWrites: true,
		Seed:        11,
	})
	defer rc.Close()

	const lines = 8
	acked := make(map[uint64]uint64, lines) // line addr -> last acked seq
	var mu sync.Mutex
	stop := make(chan struct{})
	var loadErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for seq := uint64(1); ; seq++ {
			select {
			case <-stop:
				return
			default:
			}
			addr := shard1Addr(seq % lines)
			if err := rc.Write(addr, fill(addr, seq)); err != nil {
				mu.Lock()
				loadErr = err
				mu.Unlock()
				return
			}
			mu.Lock()
			acked[addr] = seq
			mu.Unlock()
		}
	}()

	time.Sleep(50 * time.Millisecond) // let some load land pre-migration
	runMigration(t, r.addr, p.addr, 1)
	time.Sleep(50 * time.Millisecond) // and some post-cutover
	close(stop)
	wg.Wait()
	if loadErr != nil {
		t.Fatalf("write load failed during migration: %v", loadErr)
	}

	// Every acked write is on the recipient with the acked (or a later
	// acked) content — the loader may have overwritten a line after the
	// snapshot we took of the map.
	mu.Lock()
	snapshot := make(map[uint64]uint64, len(acked))
	for a, s := range acked {
		snapshot[a] = s
	}
	mu.Unlock()
	if len(snapshot) == 0 {
		t.Fatal("no writes were acknowledged")
	}
	for addr, seq := range snapshot {
		got, err := r.node.Read(addr)
		if err != nil {
			t.Fatalf("acked line %#x lost: %v", addr, err)
		}
		if string(got) != string(fill(addr, seq)) {
			t.Fatalf("acked line %#x has unexpected content after migration", addr)
		}
	}
	if err := r.node.VerifyAll(); err != nil {
		t.Fatalf("recipient integrity after migration under load: %v", err)
	}
	if err := p.node.VerifyAll(); err != nil {
		t.Fatalf("donor integrity after migration under load: %v", err)
	}
}

// TestMigrateAbortUnfences: a migration that begins but aborts leaves the
// donor serving the shard as if nothing happened.
func TestMigrateAbortUnfences(t *testing.T) {
	shcfg := testShardCfg(t, 2, 1<<13)
	p := startNode(t, shcfg, testDCfg(t), func(c *Config) { c.Primary = true })

	cl, err := wire.Dial(p.addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Write(shard1Addr(1), fill(shard1Addr(1), 1)); err != nil {
		t.Fatal(err)
	}
	begin, err := cl.Migrate(&wire.MigrateRequest{
		Phase: wire.MigrateBegin, Epoch: 1, Shard: 1, Node: "recipient:1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if begin.Size == 0 || begin.Mark == 0 {
		t.Fatalf("begin = %+v", begin)
	}
	// Cut over, then abort: the donor must unfence and forget the route.
	if _, err := cl.Migrate(&wire.MigrateRequest{
		Phase: wire.MigrateCutover, Epoch: 1, Shard: 1, Node: "recipient:1",
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.node.Write(shard1Addr(1), fill(shard1Addr(1), 2)); err == nil {
		t.Fatal("write to cut-over shard succeeded on donor")
	}
	if _, err := cl.Migrate(&wire.MigrateRequest{
		Phase: wire.MigrateAbort, Epoch: 1, Shard: 1, Node: "recipient:1",
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.node.Write(shard1Addr(1), fill(shard1Addr(1), 3)); err != nil {
		t.Fatalf("write after abort: %v", err)
	}
	if got, err := p.node.Read(shard1Addr(1)); err != nil || string(got) != string(fill(shard1Addr(1), 3)) {
		t.Fatalf("post-abort read: %v", err)
	}
}

// TestMigrateEpochDiscipline: donor-side phases follow the replication
// epoch rules — a stale epoch is refused with the redirect, a higher one
// fences the donor.
func TestMigrateEpochDiscipline(t *testing.T) {
	shcfg := testShardCfg(t, 2, 1<<13)
	p := startNode(t, shcfg, testDCfg(t), func(c *Config) { c.Primary = true; c.Epoch = 5 })
	cl, err := wire.Dial(p.addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Migrate(&wire.MigrateRequest{Phase: wire.MigrateBegin, Epoch: 4, Shard: 0, Node: "x:1"})
	var me *wire.MovedError
	if !errors.As(err, &me) {
		t.Fatalf("stale-epoch begin: got %v, want MovedError", err)
	}
	_, err = cl.Migrate(&wire.MigrateRequest{Phase: wire.MigrateBegin, Epoch: 7, Shard: 0, Node: "x:1"})
	if !errors.As(err, &me) || me.Epoch != 7 {
		t.Fatalf("future-epoch begin: got %v, want fencing MovedError at 7", err)
	}
	if ri := p.node.Route(); ri.Role != RoleFenced {
		t.Fatalf("donor role after future-epoch migrate = %s, want fenced", ri.Role)
	}
}
