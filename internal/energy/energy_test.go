package energy

import (
	"math"
	"testing"

	"github.com/securemem/morphtree/internal/dram"
)

func TestComputeBreakdown(t *testing.T) {
	p := Params{
		ActivateNJ: 2, ReadNJ: 1, WriteNJ: 3,
		DRAMBackgroundWatts: 1, CoreWatts: 4, UncoreWatts: 2,
	}
	st := dram.Stats{Activations: 1e9, Reads: 2e9, Writes: 1e9}
	b := p.Compute(st, 2.0, 4)
	// Dynamic: 1e9*2 + 2e9*1 + 1e9*3 = 7e9 nJ = 7 J.
	if math.Abs(b.DRAMDynamicJ-7) > 1e-9 {
		t.Errorf("dynamic = %v", b.DRAMDynamicJ)
	}
	if math.Abs(b.DRAMBackgroundJ-2) > 1e-9 {
		t.Errorf("background = %v", b.DRAMBackgroundJ)
	}
	// Processor: (4*4 + 2) * 2 = 36 J.
	if math.Abs(b.ProcessorJ-36) > 1e-9 {
		t.Errorf("processor = %v", b.ProcessorJ)
	}
	if math.Abs(b.TotalJ-45) > 1e-9 {
		t.Errorf("total = %v", b.TotalJ)
	}
	if math.Abs(b.AvgPowerW-22.5) > 1e-9 {
		t.Errorf("power = %v", b.AvgPowerW)
	}
	if math.Abs(b.EDP-90) > 1e-9 {
		t.Errorf("EDP = %v", b.EDP)
	}
}

func TestShorterRunWithSameTrafficWinsEDP(t *testing.T) {
	// The Figure 18 mechanism: doing the same work in less time costs
	// more power but less energy, and much less EDP.
	p := Default()
	st := dram.Stats{Activations: 5e8, Reads: 1e9, Writes: 5e8}
	fast := p.Compute(st, 1.0, 4)
	slow := p.Compute(st, 1.1, 4)
	if fast.AvgPowerW <= slow.AvgPowerW {
		t.Error("faster run should draw more average power")
	}
	if fast.TotalJ >= slow.TotalJ {
		t.Error("faster run should use less energy")
	}
	if fast.EDP >= slow.EDP {
		t.Error("faster run should have lower EDP")
	}
}

func TestZeroTimeSafe(t *testing.T) {
	b := Default().Compute(dram.Stats{}, 0, 4)
	if b.AvgPowerW != 0 || b.EDP != 0 {
		t.Errorf("zero-time breakdown = %+v", b)
	}
}
