// Package energy models system power and energy in the style of USIMM's
// DRAM power model (Micron 4Gb x8 DDR3 current profiles) plus a constant
// per-core processor power, producing the energy and energy-delay-product
// metrics of Figure 18.
package energy

import "github.com/securemem/morphtree/internal/dram"

// Params holds the energy model coefficients.
type Params struct {
	// ActivateNJ is the energy of one activate+precharge pair.
	ActivateNJ float64
	// ReadNJ and WriteNJ are per-64B-burst access energies.
	ReadNJ  float64
	WriteNJ float64
	// DRAMBackgroundWatts is standby power for the whole memory system.
	DRAMBackgroundWatts float64
	// CoreWatts is per-core processor power while executing.
	CoreWatts float64
	// UncoreWatts covers shared caches and the memory controller.
	UncoreWatts float64
}

// Default returns coefficients derived from Micron DDR3 datasheets as used
// in USIMM's power model (order-of-magnitude faithful; the paper's results
// depend on relative, not absolute, energy).
func Default() Params {
	return Params{
		ActivateNJ:          2.5,
		ReadNJ:              1.6,
		WriteNJ:             1.7,
		DRAMBackgroundWatts: 1.2,
		CoreWatts:           4.0,
		UncoreWatts:         2.0,
	}
}

// Breakdown reports the energy accounting of a run.
type Breakdown struct {
	// Seconds is the simulated execution time.
	Seconds float64
	// DRAMDynamicJ is activate+read+write energy.
	DRAMDynamicJ float64
	// DRAMBackgroundJ is standby energy over the run.
	DRAMBackgroundJ float64
	// ProcessorJ is core+uncore energy over the run.
	ProcessorJ float64
	// TotalJ is the system energy.
	TotalJ float64
	// AvgPowerW is TotalJ / Seconds.
	AvgPowerW float64
	// EDP is the energy-delay product (J*s).
	EDP float64
}

// Compute derives the energy breakdown of a run from DRAM activity, the
// execution time, and the core count.
func (p Params) Compute(st dram.Stats, seconds float64, cores int) Breakdown {
	b := Breakdown{Seconds: seconds}
	b.DRAMDynamicJ = (float64(st.Activations)*p.ActivateNJ +
		float64(st.Reads)*p.ReadNJ +
		float64(st.Writes)*p.WriteNJ) * 1e-9
	b.DRAMBackgroundJ = p.DRAMBackgroundWatts * seconds
	b.ProcessorJ = (p.CoreWatts*float64(cores) + p.UncoreWatts) * seconds
	b.TotalJ = b.DRAMDynamicJ + b.DRAMBackgroundJ + b.ProcessorJ
	if seconds > 0 {
		b.AvgPowerW = b.TotalJ / seconds
	}
	b.EDP = b.TotalJ * seconds
	return b
}
