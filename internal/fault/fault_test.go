package fault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// TestPlanDeterminism: Plan is a pure function of (Profile, index), so a
// fault schedule replays exactly from its seed.
func TestPlanDeterminism(t *testing.T) {
	prof := Profile{
		Seed: 42, Latency: time.Millisecond, Jitter: time.Millisecond,
		ChunkBytes: 7, CutEvery: 2, CutBase: 10, CutCycle: 77,
		StallEvery: 3, StallAfter: 5, StallFor: time.Second,
	}
	for i := 0; i < 500; i++ {
		if a, b := prof.Plan(i), prof.Plan(i); a != b {
			t.Fatalf("plan %d not deterministic: %+v vs %+v", i, a, b)
		}
	}
	other := prof
	other.Seed = 43
	if a, b := prof.Plan(3), other.Plan(3); a.Seed == b.Seed {
		t.Fatal("different profile seeds produced the same plan seed")
	}
}

// TestPlanCutSweep: with CutEvery=1 the cut offsets sweep CutBase ..
// CutBase+CutCycle-1 and alternate directions, covering every intra-frame
// byte offset both ways.
func TestPlanCutSweep(t *testing.T) {
	prof := Profile{CutEvery: 1, CutBase: 100, CutCycle: 4}
	seenRead := map[int64]bool{}
	seenWrite := map[int64]bool{}
	for i := 0; i < 8; i++ {
		plan := prof.Plan(i)
		switch {
		case plan.CutReadAfter >= 0 && plan.CutWriteAfter < 0:
			seenRead[plan.CutReadAfter] = true
		case plan.CutWriteAfter >= 0 && plan.CutReadAfter < 0:
			seenWrite[plan.CutWriteAfter] = true
		default:
			t.Fatalf("plan %d cuts neither or both directions: %+v", i, plan)
		}
	}
	for off := int64(100); off < 104; off++ {
		if !seenRead[off] || !seenWrite[off] {
			t.Fatalf("offset %d not swept in both directions (read %v, write %v)", off, seenRead, seenWrite)
		}
	}
}

// TestConnCutRead: the read side delivers exactly CutReadAfter bytes and
// then fails with ErrInjected, closing the underlying connection.
func TestConnCutRead(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	plan := PassPlan()
	plan.CutReadAfter = 5
	var events []string
	var mu sync.Mutex
	c := WrapConn(a, plan, func(kind string) { mu.Lock(); events = append(events, kind); mu.Unlock() })
	go func() {
		_, _ = b.Write([]byte("0123456789"))
	}()
	got, err := io.ReadAll(c)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read past cut returned %v, want ErrInjected", err)
	}
	if !bytes.Equal(got, []byte("01234")) {
		t.Fatalf("delivered %q before cut, want %q", got, "01234")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 1 || events[0] != EventCut {
		t.Fatalf("events = %v, want exactly one cut", events)
	}
}

// TestConnCutWrite: the write side pushes exactly CutWriteAfter bytes and
// then fails, leaving the peer holding a partial message.
func TestConnCutWrite(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	plan := PassPlan()
	plan.CutWriteAfter = 3
	c := WrapConn(a, plan, nil)
	delivered := make(chan []byte, 1)
	go func() {
		buf, _ := io.ReadAll(b)
		delivered <- buf
	}()
	n, err := c.Write([]byte("abcdef"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write past cut returned %v, want ErrInjected", err)
	}
	if n != 3 {
		t.Fatalf("short write reported %d bytes, want 3", n)
	}
	select {
	case got := <-delivered:
		if !bytes.Equal(got, []byte("abc")) {
			t.Fatalf("peer saw %q, want the 3-byte prefix", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer never unblocked after cut")
	}
}

// TestConnChunking: ChunkBytes splits one Write into several underlying
// writes (partial writes on the wire).
func TestConnChunking(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	plan := PassPlan()
	plan.ChunkBytes = 4
	c := WrapConn(a, plan, nil)
	var sizes []int
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64)
		for {
			n, err := b.Read(buf)
			if n > 0 {
				sizes = append(sizes, n)
			}
			if err != nil {
				return
			}
		}
	}()
	msg := []byte("0123456789") // 10 bytes -> 4+4+2
	if n, err := c.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("chunked write = %d, %v", n, err)
	}
	_ = c.Close()
	<-done
	total := 0
	for _, n := range sizes {
		if n > 4 {
			t.Fatalf("chunk of %d bytes leaked past ChunkBytes=4 (%v)", n, sizes)
		}
		total += n
	}
	if total != len(msg) {
		t.Fatalf("peer got %d bytes, want %d", total, len(msg))
	}
	if len(sizes) < 3 {
		t.Fatalf("expected >= 3 partial writes, got %v", sizes)
	}
}

// TestConnStall: a read stall freezes the flow for StallFor and then
// kills it — the withheld bytes are never delivered, so an abandoned
// request cannot come back later as a zombie.
func TestConnStall(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	const stall = 100 * time.Millisecond
	plan := PassPlan()
	plan.StallReadAfter = 0
	plan.StallFor = stall
	var mu sync.Mutex
	events := []string{}
	c := WrapConn(a, plan, func(kind string) {
		mu.Lock()
		events = append(events, kind)
		mu.Unlock()
	})
	go func() { _, _ = b.Write([]byte("hi")) }()
	start := time.Now()
	buf := make([]byte, 2)
	_, err := io.ReadFull(c, buf)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("stalled read returned %v, want ErrInjected (frozen flows die, they do not deliver late)", err)
	}
	if elapsed := time.Since(start); elapsed < stall {
		t.Fatalf("stalled read returned after %v, want >= %v", elapsed, stall)
	}
	// The connection is dead for good; no second stall, just the reset.
	if _, err := c.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after stall returned %v, want ErrInjected", err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{EventStall, EventCut}
	if len(events) != 2 || events[0] != want[0] || events[1] != want[1] {
		t.Fatalf("events = %v, want %v", events, want)
	}
}

// TestListenerWrapsAcceptedConns: a pass-through profile keeps traffic
// intact end to end; a cutting profile severs the first connection at its
// planned offset.
func TestListenerWrapsAcceptedConns(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := WrapListener(inner, Profile{CutEvery: 1, CutBase: 4, CutCycle: 1}, nil)
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Echo until the injected cut kills the read side.
		_, _ = io.Copy(conn, conn)
		_ = conn.Close()
	}()
	cl, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	// The echo dies after 4 bytes: client sees at most 4 back then EOF/reset.
	_ = cl.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, _ := io.ReadAll(cl)
	if len(got) > 4 {
		t.Fatalf("cut listener leaked %d bytes (%q), want <= 4", len(got), got)
	}
}
