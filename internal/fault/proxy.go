package fault

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Profile generates the per-connection fault plans of a whole run from
// one seed. Plan(i) is a pure function of (Profile, i): replaying a
// workload against the same profile replays the identical fault
// schedule.
type Profile struct {
	// Seed drives every derived plan's jitter RNG.
	Seed int64
	// Latency/Jitter/ChunkBytes apply to every connection (see ConnPlan).
	Latency    time.Duration
	Jitter     time.Duration
	ChunkBytes int
	// CutEvery, when > 0, severs every CutEvery-th accepted connection
	// (1-based). The k-th severed connection is cut after
	// CutBase + (k mod CutCycle) bytes; the direction alternates every
	// full cycle (client-to-server first), so 2*CutCycle severed
	// connections deterministically sweep every intra-frame byte offset
	// in both directions.
	CutEvery int
	CutBase  int64
	CutCycle int64
	// StallEvery, when > 0, freezes every StallEvery-th connection's
	// client-to-server direction for StallFor once StallAfter bytes have
	// passed, then severs it — the response the client is waiting on
	// never comes, its deadline fires, and the frozen flow dies without
	// delivering the withheld request.
	StallEvery int
	StallAfter int64
	StallFor   time.Duration
}

// Plan derives the fault plan of the i-th (0-based) accepted connection.
func (p Profile) Plan(i int) ConnPlan {
	plan := PassPlan()
	plan.ReadLatency = p.Latency
	plan.WriteLatency = p.Latency
	plan.Jitter = p.Jitter
	plan.ChunkBytes = p.ChunkBytes
	// Per-connection seed: mix the profile seed with the index through a
	// 64-bit odd multiplier so adjacent connections get unrelated jitter.
	plan.Seed = int64(uint64(p.Seed)*0x9e3779b97f4a7c15 + uint64(i)*0x2545f4914f6cdd1d + 1)
	if p.CutEvery > 0 && (i+1)%p.CutEvery == 0 {
		k := (i+1)/p.CutEvery - 1
		cycle := p.CutCycle
		if cycle <= 0 {
			cycle = 1
		}
		off := p.CutBase + int64(k)%cycle
		if (int64(k)/cycle)%2 == 0 {
			plan.CutReadAfter = off
		} else {
			plan.CutWriteAfter = off
		}
	}
	if p.StallEvery > 0 && (i+1)%p.StallEvery == 0 {
		plan.StallReadAfter = p.StallAfter
		plan.StallFor = p.StallFor
	}
	return plan
}

// ProxyStats counts what a proxy run injected and carried.
type ProxyStats struct {
	Conns    uint64 `json:"conns"`
	Cuts     uint64 `json:"cuts"`
	Stalls   uint64 `json:"stalls"`
	BytesC2S uint64 `json:"bytes_c2s"`
	BytesS2C uint64 `json:"bytes_s2c"`
}

// Proxy is the in-process chaos proxy: it accepts client connections,
// dials the backend for each, and pipes bytes through a fault-injecting
// Conn, so neither end needs any test hooks to experience a hostile
// network. The client-facing half carries the plan: its Read side is the
// client-to-server direction, its Write side the responses.
type Proxy struct {
	ln      net.Listener
	backend string
	prof    Profile

	mu    sync.Mutex
	idx   int
	conns map[net.Conn]struct{}
	stats ProxyStats
}

// NewProxy builds a chaos proxy in front of backend, accepting on ln.
func NewProxy(ln net.Listener, backend string, prof Profile) *Proxy {
	return &Proxy{
		ln:      ln,
		backend: backend,
		prof:    prof,
		conns:   make(map[net.Conn]struct{}),
	}
}

// Addr is the proxy's client-facing address.
func (p *Proxy) Addr() net.Addr { return p.ln.Addr() }

// Stats returns a snapshot of the injected-fault counters.
func (p *Proxy) Stats() ProxyStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

func (p *Proxy) onEvent(kind string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch kind {
	case EventCut:
		p.stats.Cuts++
	case EventStall:
		p.stats.Stalls++
	}
}

// Serve proxies until ctx is canceled, then closes the listener and every
// live connection pair and waits for the pipes to drain. Like
// server.Serve it always returns a non-nil error: ctx.Err() on shutdown,
// or the accept failure.
func (p *Proxy) Serve(ctx context.Context) error {
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-ctx.Done():
		case <-stop:
		}
		_ = p.ln.Close()
		p.closeAll()
	}()

	var serveErr error
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				serveErr = ctx.Err()
			} else {
				serveErr = fmt.Errorf("fault: proxy accept: %w", err)
			}
			break
		}
		p.mu.Lock()
		i := p.idx
		p.idx++
		p.stats.Conns++
		p.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.pipe(conn, p.prof.Plan(i))
		}()
	}
	close(stop)
	wg.Wait()
	return serveErr
}

// pipe connects one client connection to a fresh backend connection and
// copies both directions through the fault wrapper until either side
// dies. An unreachable backend just drops the client — exactly what a
// dead server looks like from outside.
func (p *Proxy) pipe(client net.Conn, plan ConnPlan) {
	faulty := WrapConn(client, plan, p.onEvent)
	backend, err := net.Dial("tcp", p.backend)
	if err != nil {
		_ = client.Close()
		return
	}
	p.track(client)
	p.track(backend)
	defer p.untrack(client)
	defer p.untrack(backend)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _ = io.Copy(backend, faulty) // client -> server
		// The client is done sending (or was cut): finish the backend's
		// view so its read loop ends too.
		closeWrite(backend)
	}()
	go func() {
		defer wg.Done()
		_, _ = io.Copy(faulty, backend) // server -> client
		closeWrite(client)
	}()
	wg.Wait()
	read, written := faulty.Counts()
	p.mu.Lock()
	p.stats.BytesC2S += uint64(read)
	p.stats.BytesS2C += uint64(written)
	p.mu.Unlock()
}

// closeWrite half-closes a TCP connection, or fully closes anything else.
func closeWrite(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
		return
	}
	_ = conn.Close()
}

func (p *Proxy) track(conn net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conns[conn] = struct{}{}
}

func (p *Proxy) untrack(conn net.Conn) {
	p.mu.Lock()
	delete(p.conns, conn)
	p.mu.Unlock()
	_ = conn.Close()
}

func (p *Proxy) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for conn := range p.conns {
		_ = conn.Close()
	}
}

// Start is the test-friendly wrapper: listen on a loopback ephemeral
// port, run Serve in a goroutine, and return the proxy plus a shutdown
// function that stops it and waits for the pipes to drain.
func Start(backend string, prof Profile) (*Proxy, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, fmt.Errorf("fault: proxy listen: %w", err)
	}
	p := NewProxy(ln, backend, prof)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Serve(ctx) }()
	return p, func() {
		cancel()
		err := <-done
		if err != nil && !errors.Is(err, context.Canceled) {
			// Serve only fails this way if the listener broke underneath
			// us; nothing a caller can do at shutdown.
			_ = err
		}
	}, nil
}
