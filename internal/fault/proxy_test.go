package fault

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes until closed. Returns
// its address and a stop function.
func echoServer(t *testing.T) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}()
		}
	}()
	return ln.Addr().String(), func() {
		_ = ln.Close()
		wg.Wait()
	}
}

// TestProxyPassThrough: with a zero profile the proxy is a faithful pipe.
func TestProxyPassThrough(t *testing.T) {
	backend, stopEcho := echoServer(t)
	defer stopEcho()
	p, stop, err := Start(backend, Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	cl, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	msg := []byte("through the chaos proxy, untouched")
	if _, err := cl.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	_ = cl.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(cl, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("echo through proxy = %q, want %q", got, msg)
	}
	st := p.Stats()
	if st.Conns != 1 || st.Cuts != 0 || st.Stalls != 0 {
		t.Fatalf("pass-through stats = %+v", st)
	}
}

// TestProxyCutsConnections: every connection is severed after CutBase
// bytes; the client observes the reset and the stats count it.
func TestProxyCutsConnections(t *testing.T) {
	backend, stopEcho := echoServer(t)
	defer stopEcho()
	p, stop, err := Start(backend, Profile{CutEvery: 1, CutBase: 8, CutCycle: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	for i := 0; i < 3; i++ {
		cl, err := net.Dial("tcp", p.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		_ = cl.SetDeadline(time.Now().Add(5 * time.Second))
		// 16 bytes out; the c2s or s2c direction dies after 8.
		_, _ = cl.Write(make([]byte, 16))
		got, _ := io.ReadAll(cl)
		if len(got) >= 16 {
			t.Fatalf("conn %d survived a planned cut (echoed %d bytes)", i, len(got))
		}
		_ = cl.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Cuts < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("stats = %+v, want 3 cuts", p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if st := p.Stats(); st.Conns != 3 {
		t.Fatalf("stats = %+v, want 3 conns", st)
	}
}

// TestProxyBackendDown: an unreachable backend drops the client without
// wedging the proxy.
func TestProxyBackendDown(t *testing.T) {
	// Grab an address with nothing listening on it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	_ = ln.Close()

	p, stop, err := Start(dead, Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	cl, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_ = cl.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := cl.Read(buf); err == nil {
		t.Fatal("read from proxied dead backend succeeded")
	} else if errors.Is(err, io.ErrNoProgress) {
		t.Fatalf("unexpected error %v", err)
	}
}
