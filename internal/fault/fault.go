// Package fault is a deterministic, seeded network fault-injection layer
// for the serving stack: net.Conn and net.Listener wrappers plus an
// in-process chaos proxy (proxy.go) that sit between a wire client and a
// morphserve server and inject the failures real networks produce —
// added latency and jitter, partial writes, read stalls, connection
// resets, and mid-frame drops at chosen byte offsets.
//
// Everything is driven by explicit per-connection plans derived from a
// Profile's seed, never from ambient randomness, so a failing fault
// schedule replays exactly from its seed. The package injects only
// failures an unreliable-but-honest network can produce: bytes are
// delayed, split, or cut — never altered — so any IntegrityError observed
// under injection is by construction spurious.
package fault

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Event kinds reported to a Conn's observer as faults fire.
const (
	// EventCut is an injected connection reset (mid-stream sever).
	EventCut = "cut"
	// EventStall is an injected read stall.
	EventStall = "stall"
)

// ErrInjected is the error a Conn returns once its cut budget is spent.
// It implements net.Error (non-timeout), like the ECONNRESET it stands
// in for.
var ErrInjected = &injectedError{}

type injectedError struct{}

func (*injectedError) Error() string   { return "fault: injected connection reset" }
func (*injectedError) Timeout() bool   { return false }
func (*injectedError) Temporary() bool { return true }

// ConnPlan is one connection's fault schedule. Byte offsets are absolute
// positions in that direction's stream; a negative offset disables the
// fault. The zero value (with offsets left 0) cuts immediately, so plans
// should come from PassPlan or Profile.Plan rather than a bare literal.
type ConnPlan struct {
	// ReadLatency / WriteLatency delay each Read / Write call; Jitter
	// adds a uniform random extra in [0, Jitter) from the plan's seeded
	// RNG.
	ReadLatency  time.Duration
	WriteLatency time.Duration
	Jitter       time.Duration
	// ChunkBytes caps how many bytes a single Write pushes to the
	// underlying connection at once (0 = unlimited). Each chunk pays the
	// write latency separately, so a frame crosses the wire as several
	// delayed partial writes.
	ChunkBytes int
	// CutReadAfter severs the connection once this many bytes have been
	// read (mid-frame drop / reset as seen by the peer still writing).
	// Negative disables.
	CutReadAfter int64
	// CutWriteAfter severs the connection once this many bytes have been
	// written. Negative disables.
	CutWriteAfter int64
	// StallReadAfter freezes the first Read at or past this byte offset
	// for StallFor, then severs the connection. The withheld bytes are
	// never delivered: by the time a real network unfreezes, the peer has
	// timed out and its reset has killed the flow — late delivery would
	// instead resurrect abandoned requests as zombies that a protocol
	// without request IDs cannot defend against. Negative disables.
	StallReadAfter int64
	StallFor       time.Duration
	// Seed drives the plan's private jitter RNG.
	Seed int64
}

// PassPlan is the no-fault plan: traffic flows untouched.
func PassPlan() ConnPlan {
	return ConnPlan{CutReadAfter: -1, CutWriteAfter: -1, StallReadAfter: -1}
}

// Conn wraps a net.Conn and applies a ConnPlan to its Read/Write paths.
// It is safe for the usual one-reader/one-writer connection usage.
type Conn struct {
	net.Conn
	plan    ConnPlan
	onEvent func(kind string)

	mu      sync.Mutex
	rng     *rand.Rand
	readN   int64
	writeN  int64
	stalled bool
	cut     bool
}

// WrapConn applies plan to conn. onEvent, if non-nil, observes injected
// faults (EventCut, EventStall); it must be safe for concurrent use.
func WrapConn(conn net.Conn, plan ConnPlan, onEvent func(kind string)) *Conn {
	return &Conn{
		Conn:    conn,
		plan:    plan,
		onEvent: onEvent,
		rng:     rand.New(rand.NewSource(plan.Seed)),
	}
}

// Counts returns how many bytes have passed in each direction.
func (c *Conn) Counts() (read, written int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readN, c.writeN
}

func (c *Conn) event(kind string) {
	if c.onEvent != nil {
		c.onEvent(kind)
	}
}

// delay sleeps base plus seeded jitter.
func (c *Conn) delay(base time.Duration) {
	var extra time.Duration
	if c.plan.Jitter > 0 {
		c.mu.Lock()
		extra = time.Duration(c.rng.Int63n(int64(c.plan.Jitter)))
		c.mu.Unlock()
	}
	if d := base + extra; d > 0 {
		time.Sleep(d)
	}
}

// abort severs the underlying connection like a reset: TCP connections
// get SO_LINGER 0 so the peer sees an RST rather than an orderly FIN.
// Idempotent; only the first call reports EventCut.
func (c *Conn) abort() {
	c.mu.Lock()
	already := c.cut
	c.cut = true
	c.mu.Unlock()
	if already {
		return
	}
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Conn.Close()
	c.event(EventCut)
}

// Read applies latency, the one-shot stall, and the read-side cut budget,
// then reads at most up-to-the-budget bytes from the wrapped connection.
func (c *Conn) Read(p []byte) (int, error) {
	c.delay(c.plan.ReadLatency)
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	if c.plan.StallReadAfter >= 0 && !c.stalled && c.readN >= c.plan.StallReadAfter {
		c.stalled = true
		c.mu.Unlock()
		c.event(EventStall)
		time.Sleep(c.plan.StallFor)
		c.abort() // a frozen flow dies; it never delivers what it withheld
		return 0, ErrInjected
	}
	if cut := c.plan.CutReadAfter; cut >= 0 {
		rem := cut - c.readN
		if rem <= 0 {
			c.mu.Unlock()
			c.abort()
			return 0, ErrInjected
		}
		if int64(len(p)) > rem {
			p = p[:rem]
		}
	}
	c.mu.Unlock()
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.readN += int64(n)
	c.mu.Unlock()
	return n, err
}

// Write applies latency and chunking, never pushing more than ChunkBytes
// at once, and severs the connection when the write-side cut budget is
// spent — possibly mid-frame, after a partial write of the prefix.
func (c *Conn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		chunk := p
		if c.plan.ChunkBytes > 0 && len(chunk) > c.plan.ChunkBytes {
			chunk = chunk[:c.plan.ChunkBytes]
		}
		c.delay(c.plan.WriteLatency)
		c.mu.Lock()
		if c.cut {
			c.mu.Unlock()
			return total, ErrInjected
		}
		if cut := c.plan.CutWriteAfter; cut >= 0 {
			rem := cut - c.writeN
			if rem <= 0 {
				c.mu.Unlock()
				c.abort()
				return total, ErrInjected
			}
			if int64(len(chunk)) > rem {
				chunk = chunk[:rem]
			}
		}
		c.mu.Unlock()
		n, err := c.Conn.Write(chunk)
		c.mu.Lock()
		c.writeN += int64(n)
		c.mu.Unlock()
		total += n
		if err != nil {
			return total, err
		}
		p = p[n:]
	}
	return total, nil
}

// Listener wraps a net.Listener, applying a Profile-derived plan to the
// i-th accepted connection. Accept order therefore fully determines the
// fault schedule for a given seed.
type Listener struct {
	net.Listener
	prof    Profile
	onEvent func(kind string)

	mu  sync.Mutex
	idx int
}

// WrapListener wraps ln so every accepted connection carries prof's plan
// for its accept index. onEvent observes injected faults across all
// connections (may be nil).
func WrapListener(ln net.Listener, prof Profile, onEvent func(kind string)) *Listener {
	return &Listener{Listener: ln, prof: prof, onEvent: onEvent}
}

// Accept accepts the next connection and wraps it with its plan.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.idx
	l.idx++
	l.mu.Unlock()
	return WrapConn(conn, l.prof.Plan(i), l.onEvent), nil
}
