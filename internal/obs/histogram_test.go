package obs

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestBucketBounds(t *testing.T) {
	// Every bucket's bounds must contain exactly the values that map to
	// it, with no gaps or overlaps across the whole layout.
	for i := 0; i < NumBuckets; i++ {
		lo, hi := BucketLower(i), BucketUpper(i)
		if lo > hi {
			t.Fatalf("bucket %d: lower %d > upper %d", i, lo, hi)
		}
		if bucketIndex(lo) != i {
			t.Fatalf("bucket %d: lower bound %d maps to bucket %d", i, lo, bucketIndex(lo))
		}
		if bucketIndex(hi) != i {
			t.Fatalf("bucket %d: upper bound %d maps to bucket %d", i, hi, bucketIndex(hi))
		}
		if i > 0 && BucketUpper(i-1) != lo-1 {
			t.Fatalf("gap between bucket %d and %d: %d vs %d", i-1, i, BucketUpper(i-1), lo)
		}
	}
	if bucketIndex(0) != 0 {
		t.Fatal("zero must land in bucket 0")
	}
	if got := bucketIndex(math.MaxInt64); got != NumBuckets-1 {
		t.Fatalf("MaxInt64 maps to bucket %d, want %d", got, NumBuckets-1)
	}
}

func TestBucketRelativeWidth(t *testing.T) {
	// Above the linear region the relative bucket width must stay ≤ 1/4
	// (subBits=2), which bounds the quantile estimation error.
	for i := 1 << subBits; i < NumBuckets-1; i++ {
		lo, hi := BucketLower(i), BucketUpper(i)
		width := float64(hi-lo+1) / float64(lo)
		if width > 0.25+1e-9 {
			t.Fatalf("bucket %d [%d,%d]: relative width %.3f > 0.25", i, lo, hi, width)
		}
	}
}

// exactQuantile computes the true q-quantile of samples by sorting.
func exactQuantile(samples []int64, q float64) int64 {
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// quantileWithinOneBucket checks the histogram estimate for q lands in
// the same bucket as (or within one bucket of) the exact value.
func quantileWithinOneBucket(t *testing.T, samples []int64, q float64) {
	t.Helper()
	h := newHistogram()
	for _, v := range samples {
		h.RecordValue(v)
	}
	est := h.Snapshot().Quantile(q)
	exact := exactQuantile(samples, q)
	bEst, bExact := bucketIndex(est), bucketIndex(exact)
	if d := bEst - bExact; d < -1 || d > 1 {
		t.Fatalf("q=%.2f over %d samples: estimate %d (bucket %d) vs exact %d (bucket %d)",
			q, len(samples), est, bEst, exact, bExact)
	}
}

func TestQuantileWithinOneBucketQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 40,
		Rand:     rand.New(rand.NewSource(5)),
		Values: func(args []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(2000)
			samples := make([]int64, n)
			switch r.Intn(3) {
			case 0: // uniform small latencies
				for i := range samples {
					samples[i] = int64(r.Intn(1_000_000))
				}
			case 1: // log-spread across 9 orders of magnitude
				for i := range samples {
					samples[i] = int64(1) << uint(r.Intn(30))
				}
			default: // heavy-tailed: mostly fast, occasional stalls
				for i := range samples {
					if r.Intn(100) == 0 {
						samples[i] = int64(10_000_000 + r.Intn(1_000_000_000))
					} else {
						samples[i] = int64(100 + r.Intn(10_000))
					}
				}
			}
			args[0] = reflect.ValueOf(samples)
		},
	}
	fn := func(samples []int64) bool {
		for _, q := range []float64{0.50, 0.90, 0.99, 1.0} {
			quantileWithinOneBucket(t, samples, q)
		}
		return true
	}
	if err := quick.Check(fn, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEquivalence(t *testing.T) {
	// merge-of-snapshots must equal snapshot-of-merged: record the same
	// sample stream into (h1, h2) split across concurrent goroutines and
	// into h3 whole, then compare Merge(snap(h1), snap(h2)) with snap(h3).
	h1, h2, h3 := newHistogram(), newHistogram(), newHistogram()
	rng := rand.New(rand.NewSource(7))
	const n = 50000
	samples := make([]int64, n)
	for i := range samples {
		samples[i] = int64(rng.Intn(50_000_000))
	}
	var wg sync.WaitGroup
	for part := 0; part < 2; part++ {
		h := h1
		if part == 1 {
			h = h2
		}
		lo, hi := part*n/2, (part+1)*n/2
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(h *Histogram, chunk []int64) {
				defer wg.Done()
				for _, v := range chunk {
					h.RecordValue(v)
				}
			}(h, samples[lo+(hi-lo)*w/4:lo+(hi-lo)*(w+1)/4])
		}
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(chunk []int64) {
			defer wg.Done()
			for _, v := range chunk {
				h3.RecordValue(v)
			}
		}(samples[n*w/4 : n*(w+1)/4])
	}
	wg.Wait()

	merged := h1.Snapshot()
	merged.Merge(h2.Snapshot())
	whole := h3.Snapshot()
	if merged.Count != whole.Count || merged.Sum != whole.Sum || merged.Max != whole.Max {
		t.Fatalf("scalar mismatch: merged {%d %d %d} vs whole {%d %d %d}",
			merged.Count, merged.Sum, merged.Max, whole.Count, whole.Sum, whole.Max)
	}
	if len(merged.Buckets) != len(whole.Buckets) {
		t.Fatalf("bucket length mismatch: %d vs %d", len(merged.Buckets), len(whole.Buckets))
	}
	for b := range merged.Buckets {
		if merged.Buckets[b] != whole.Buckets[b] {
			t.Fatalf("bucket %d: merged %d vs whole %d", b, merged.Buckets[b], whole.Buckets[b])
		}
	}
	if merged.P50 != whole.P50 || merged.P90 != whole.P90 || merged.P99 != whole.P99 {
		t.Fatalf("quantile mismatch: merged {%d %d %d} vs whole {%d %d %d}",
			merged.P50, merged.P90, merged.P99, whole.P50, whole.P90, whole.P99)
	}
}

func TestDelta(t *testing.T) {
	h := newHistogram()
	for i := 0; i < 100; i++ {
		h.RecordValue(10)
	}
	prev := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.RecordValue(1000)
	}
	d := h.Snapshot().Delta(prev)
	if d.Count != 50 {
		t.Fatalf("delta count = %d, want 50", d.Count)
	}
	if d.Sum != 50*1000 {
		t.Fatalf("delta sum = %d, want 50000", d.Sum)
	}
	// All 50 interval samples were 1000ns, so every quantile lands in
	// 1000's bucket.
	if bucketIndex(d.P50) != bucketIndex(1000) || bucketIndex(d.P99) != bucketIndex(1000) {
		t.Fatalf("delta quantiles p50=%d p99=%d, want near 1000", d.P50, d.P99)
	}
	// A restarted histogram (count went backwards) yields the current
	// snapshot rather than underflowing.
	fresh := newHistogram()
	fresh.RecordValue(5)
	d2 := fresh.Snapshot().Delta(prev)
	if d2.Count != 1 {
		t.Fatalf("restart delta count = %d, want 1", d2.Count)
	}
}

func TestRecordClampsNegative(t *testing.T) {
	h := newHistogram()
	h.Record(-5 * time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.Max != 0 {
		t.Fatalf("negative record: count=%d max=%d, want 1, 0", s.Count, s.Max)
	}
}

func TestEmptySnapshot(t *testing.T) {
	s := newHistogram().Snapshot()
	if s.Count != 0 || s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	var empty HistSnapshot
	empty.Merge(s)
	if empty.Count != 0 {
		t.Fatal("merging empties produced samples")
	}
}
