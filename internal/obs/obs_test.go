package obs

import (
	"sync"
	"testing"
)

func TestCounterConcurrentSum(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.adds")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("same name returned distinct counters")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same name returned distinct gauges")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name returned distinct histograms")
	}
	if r.Counter("a") == r.Counter("b") {
		t.Fatal("distinct names shared a counter")
	}
}

func TestNilSafety(t *testing.T) {
	// Every instrument obtained from a nil registry must be inert, and
	// every method on it a no-op: this is the "observability off" mode.
	var r *Registry
	c := r.Counter("c")
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter not inert")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatal("nil gauge not inert")
	}
	h := r.Histogram("h")
	h.Record(5)
	h.RecordValue(9)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram not inert")
	}
	r.RegisterCollector(func(emit func(string, uint64)) { emit("x", 1) })
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	var tr *Tracer
	tr.Emit(KindOverflow, 0, 1, 2, 3)
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer events = %v, want nil", got)
	}
	if tr.Count(KindOverflow) != 0 {
		t.Fatal("nil tracer count non-zero")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight")
	g.Add(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Value())
	}
	g.Set(-1)
	if g.Value() != -1 {
		t.Fatalf("gauge = %d, want -1", g.Value())
	}
}

func TestCollector(t *testing.T) {
	r := NewRegistry()
	r.Counter("direct").Add(2)
	r.RegisterCollector(func(emit func(string, uint64)) {
		emit("pulled.a", 10)
		emit("pulled.b", 20)
	})
	snap := r.Snapshot()
	if snap.Counters["direct"] != 2 {
		t.Fatalf("direct = %d, want 2", snap.Counters["direct"])
	}
	if snap.Counters["pulled.a"] != 10 || snap.Counters["pulled.b"] != 20 {
		t.Fatalf("collector counters missing: %v", snap.Counters)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(42)
	r.Gauge("inflight").Set(-3)
	h := r.Histogram("lat")
	for v := int64(1); v <= 1000; v++ {
		h.RecordValue(v)
	}
	snap := r.Snapshot()
	b, err := snap.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if got.Counters["ops"] != 42 || got.Gauges["inflight"] != -3 {
		t.Fatalf("scalar round trip mismatch: %+v", got)
	}
	hs := got.Histograms["lat"]
	if hs.Count != 1000 || hs.Max != 1000 {
		t.Fatalf("histogram round trip: count=%d max=%d", hs.Count, hs.Max)
	}
	if hs.P50 != snap.Histograms["lat"].P50 {
		t.Fatalf("p50 changed in transit: %d vs %d", hs.P50, snap.Histograms["lat"].P50)
	}
}

func TestSnapshotNameOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Inc()
	r.Counter("alpha").Inc()
	r.Histogram("mid").RecordValue(1)
	r.Histogram("abc").RecordValue(1)
	snap := r.Snapshot()
	cn := snap.CounterNames()
	if len(cn) != 2 || cn[0] != "alpha" || cn[1] != "zeta" {
		t.Fatalf("counter names = %v", cn)
	}
	hn := snap.HistogramNames()
	if len(hn) != 2 || hn[0] != "abc" || hn[1] != "mid" {
		t.Fatalf("histogram names = %v", hn)
	}
}
