package obs

import (
	"strings"
	"testing"
)

func TestKeyFingerprintStable(t *testing.T) {
	key := []byte("0123456789abcdef")
	a := KeyFingerprint(key)
	b := KeyFingerprint([]byte("0123456789abcdef"))
	if a != b {
		t.Fatalf("fingerprint not stable: %016x vs %016x", a, b)
	}
	if a == 0 {
		t.Fatalf("fingerprint is zero")
	}
}

func TestKeyFingerprintDistinguishesKeys(t *testing.T) {
	a := KeyFingerprint([]byte("0123456789abcdef"))
	b := KeyFingerprint([]byte("0123456789abcdeg"))
	if a == b {
		t.Fatalf("distinct keys share fingerprint %016x", a)
	}
}

func TestKeyFingerprintDomainSeparated(t *testing.T) {
	// The fingerprint must not equal a plain SHA-256 prefix of the key,
	// or it would leak a usable hash of the key material.
	key := []byte("0123456789abcdef")
	if KeyFingerprint(key) == KeyFingerprint(append([]byte(fingerprintDomain), key...)) {
		t.Fatalf("fingerprint ignores domain separation")
	}
}

func TestKeyDescNeverContainsKeyBytes(t *testing.T) {
	key := []byte("0123456789abcdef")
	d := KeyDesc(key)
	if strings.Contains(d, string(key)) {
		t.Fatalf("KeyDesc leaked raw key bytes: %q", d)
	}
	if !strings.Contains(d, "len=16") {
		t.Fatalf("KeyDesc missing length: %q", d)
	}
	if !strings.Contains(d, "fp=") {
		t.Fatalf("KeyDesc missing fingerprint: %q", d)
	}
}
