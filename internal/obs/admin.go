package obs

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Plane is the admin telemetry HTTP plane: a second, operator-facing
// listener exposing the registry (/metricz), the tracer (/tracez), a
// health probe (/healthz), and net/http/pprof. It is deliberately
// separate from the wire protocol listener so telemetry scrapes never
// compete with data-path admission control.
type Plane struct {
	Registry *Registry
	Tracer   *Tracer
	// Health reports serving health; nil means "healthy if reachable".
	// A non-nil error turns /healthz into a 503 carrying the message.
	Health func() error
	// Extra mounts additional operator endpoints on the admin mux, keyed
	// by pattern (e.g. "/rootz"). Patterns colliding with the built-in
	// ones are ignored — the built-ins win.
	Extra map[string]http.HandlerFunc
}

// Handler returns the admin mux.
func (p *Plane) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metricz", func(w http.ResponseWriter, r *http.Request) {
		snap := p.Registry.Snapshot()
		// ?tenant=<id> slices the snapshot down to one tenant's metric
		// namespace (tenant.<id>.*) for tenant-scoped dashboards.
		if id := r.URL.Query().Get("tenant"); id != "" {
			snap = snap.FilterTenant(id)
		}
		body, err := snap.Encode()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, body)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		body, err := p.Tracer.Snapshot().Encode()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, body)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if p.Health != nil {
			if err := p.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	builtin := map[string]bool{
		"/metricz": true, "/tracez": true, "/healthz": true,
		"/debug/pprof/": true, "/debug/pprof/cmdline": true,
		"/debug/pprof/profile": true, "/debug/pprof/symbol": true,
		"/debug/pprof/trace": true,
	}
	for pattern, h := range p.Extra {
		if builtin[pattern] || h == nil {
			continue
		}
		mux.HandleFunc(pattern, h)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve runs the admin plane on ln until ctx is cancelled, then shuts
// down gracefully. It returns nil on clean shutdown.
func (p *Plane) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           p.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}()
	err := srv.Serve(ln)
	<-done
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

func writeJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}
