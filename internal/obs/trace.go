package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies a lifecycle event type.
type Kind uint8

// Lifecycle event kinds. The A/B payload fields carry kind-specific
// detail; Dur carries a duration in nanoseconds where one applies.
const (
	KindReqStart     Kind = iota // A=opcode
	KindReqEnd                   // A=opcode, B=status, Dur=latency
	KindTreeWalk                 // A=level, B=node index (verified fetch)
	KindOverflow                 // A=level, B=blocks re-encrypted
	KindRebase                   // A=level, B=node index
	KindFormatSwitch             // A=level, B=node index (representation/ZCC width change)
	KindCacheEvict               // A=victim address, B=1 if dirty
	KindWALFsync                 // A=batch size (writers covered), Dur=fsync latency
	KindSnapshot                 // A=LSN, Dur=checkpoint latency
	KindShed                     // A=opcode (request shed by admission control)
	KindReconnect                // A=attempt number
	KindRetry                    // A=attempt number, B=1 if shed-triggered
	KindProofBuild               // A=address, B=chain lines present, Dur=build latency
	KindRootPublish              // A=epoch, B=log size (transparency-log append)
	KindTenantBind               // A=tenant index (connection bound by HELLO)
	KindQuotaShed                // A=opcode, B=tenant index (request shed by quota)
	KindReplBatch                // A=shard, B=records applied, Dur=apply latency
	KindPromote                  // A=new fencing epoch, Dur=catch-up latency
	KindFence                    // A=observed epoch, B=local epoch (step-down)
	KindReroute                  // A=fencing epoch, B=1 if leader known
	KindDeltaCkpt                // A=new epoch, B=dirty lines captured, Dur=cut latency
	KindMigrateBegin             // A=shard, B=state bytes spilled
	KindMigrateTail              // A=shard, B=tail records applied
	KindMigrateCutover           // A=shard, B=final LSN, Dur=total migration time
	numKinds
)

var kindNames = [numKinds]string{
	"req_start", "req_end", "tree_walk", "overflow", "rebase",
	"format_switch", "cache_evict", "wal_fsync", "snapshot", "shed",
	"reconnect", "retry", "proof_build", "root_publish",
	"tenant_bind", "quota_shed", "repl_batch", "promote", "fence",
	"reroute", "delta_ckpt", "migrate_begin", "migrate_tail",
	"migrate_cutover",
}

// String returns the snake_case kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalText encodes the kind name for JSON snapshots.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText decodes a kind name from a JSON snapshot.
func (k *Kind) UnmarshalText(b []byte) error {
	s := string(b)
	for i, name := range kindNames {
		if name == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one traced lifecycle event. Seq is globally monotonic per
// tracer; Time is unix nanoseconds; Shard is -1 when no shard applies.
type Event struct {
	Seq   uint64 `json:"seq"`
	Time  int64  `json:"time_unix_nano"`
	Kind  Kind   `json:"kind"`
	Shard int32  `json:"shard"`
	A     uint64 `json:"a"`
	B     uint64 `json:"b"`
	Dur   int64  `json:"dur_ns,omitempty"`
}

// traceSlot is one ring entry guarded by its own mutex so writers to
// different slots never contend and readers can copy a consistent event.
type traceSlot struct {
	mu   sync.Mutex
	ev   Event
	full bool
}

// Tracer is a fixed-capacity drop-oldest ring of lifecycle events. Emit
// claims a sequence number atomically and then TryLocks only its target
// slot: if a reader (or a lapping writer) holds that slot, the event is
// counted as dropped instead of blocking — tracing never stalls the hot
// path. Per-kind totals are kept in plain atomics and survive ring
// wraparound, so rates remain exact even when events are overwritten.
// All methods are safe for concurrent use and no-ops on a nil receiver.
type Tracer struct {
	slots   []traceSlot
	seq     atomic.Uint64
	dropped atomic.Uint64
	counts  [numKinds]atomic.Uint64
}

// NewTracer returns a tracer holding the last cap events (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{slots: make([]traceSlot, capacity)}
}

// Emit records one event. It never blocks: under slot contention the
// event is dropped (and counted).
func (t *Tracer) Emit(kind Kind, shard int32, a, b uint64, dur time.Duration) {
	if t == nil || kind >= numKinds {
		return
	}
	seq := t.seq.Add(1)
	t.counts[kind].Add(1)
	slot := &t.slots[seq%uint64(len(t.slots))]
	if !slot.mu.TryLock() {
		t.dropped.Add(1)
		return
	}
	slot.ev = Event{
		Seq:   seq,
		Time:  time.Now().UnixNano(),
		Kind:  kind,
		Shard: shard,
		A:     a,
		B:     b,
		Dur:   int64(dur),
	}
	slot.full = true
	slot.mu.Unlock()
}

// Events returns the ring's current contents ordered by sequence number.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		if s.full {
			out = append(out, s.ev)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Count returns the total number of events emitted with the given kind,
// including events since overwritten or dropped.
func (t *Tracer) Count(kind Kind) uint64 {
	if t == nil || kind >= numKinds {
		return 0
	}
	return t.counts[kind].Load()
}

// TraceSnapshot is the JSON view served at /tracez: lifetime totals plus
// the ring's recent events.
type TraceSnapshot struct {
	TimeUnixNano int64             `json:"time_unix_nano"`
	Emitted      uint64            `json:"emitted"`
	Dropped      uint64            `json:"dropped"`
	Counts       map[string]uint64 `json:"counts"`
	Events       []Event           `json:"events"`
}

// Encode marshals the trace snapshot as JSON (the /tracez body).
func (s TraceSnapshot) Encode() ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("obs: encode trace snapshot: %w", err)
	}
	return b, nil
}

// DecodeTraceSnapshot unmarshals a /tracez body.
func DecodeTraceSnapshot(b []byte) (TraceSnapshot, error) {
	var s TraceSnapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return TraceSnapshot{}, fmt.Errorf("obs: decode trace snapshot: %w", err)
	}
	return s, nil
}

// Snapshot captures totals and the current ring contents.
func (t *Tracer) Snapshot() TraceSnapshot {
	snap := TraceSnapshot{
		TimeUnixNano: time.Now().UnixNano(),
		Counts:       map[string]uint64{},
	}
	if t == nil {
		return snap
	}
	snap.Emitted = t.seq.Load()
	snap.Dropped = t.dropped.Load()
	for k := Kind(0); k < numKinds; k++ {
		if n := t.counts[k].Load(); n != 0 {
			snap.Counts[k.String()] = n
		}
	}
	snap.Events = t.Events()
	return snap
}
