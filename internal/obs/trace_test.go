package obs

import (
	"sync"
	"testing"
	"time"
)

func TestTracerBasics(t *testing.T) {
	tr := NewTracer(64)
	tr.Emit(KindOverflow, 3, 2, 64, 0)
	tr.Emit(KindReqEnd, -1, 0x02, 0, 150*time.Microsecond)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Kind != KindOverflow || evs[0].Shard != 3 || evs[0].A != 2 || evs[0].B != 64 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Seq <= evs[0].Seq {
		t.Fatalf("sequence not monotonic: %d then %d", evs[0].Seq, evs[1].Seq)
	}
	if evs[1].Dur != int64(150*time.Microsecond) {
		t.Fatalf("dur = %d", evs[1].Dur)
	}
	if tr.Count(KindOverflow) != 1 || tr.Count(KindReqEnd) != 1 || tr.Count(KindShed) != 0 {
		t.Fatal("per-kind counts wrong")
	}
}

func TestTracerDropOldest(t *testing.T) {
	tr := NewTracer(16)
	const emitted = 100
	for i := 0; i < emitted; i++ {
		tr.Emit(KindTreeWalk, 0, uint64(i), 0, 0)
	}
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("ring holds %d events, want capacity 16", len(evs))
	}
	// The ring keeps the newest events: sequence numbers 85..100.
	for i, ev := range evs {
		if want := uint64(emitted - 16 + 1 + i); ev.Seq != want {
			t.Fatalf("event %d: seq %d, want %d", i, ev.Seq, want)
		}
	}
	if tr.Count(KindTreeWalk) != emitted {
		t.Fatalf("lifetime count = %d, want %d (must survive overwrite)", tr.Count(KindTreeWalk), emitted)
	}
}

func TestTracerMinimumCapacity(t *testing.T) {
	tr := NewTracer(0)
	for i := 0; i < 20; i++ {
		tr.Emit(KindShed, -1, 1, 0, 0)
	}
	if got := len(tr.Events()); got != 16 {
		t.Fatalf("capacity-0 tracer holds %d, want clamped minimum 16", got)
	}
}

func TestTracerConcurrent(t *testing.T) {
	// Hammer a small ring from many goroutines while a reader drains it:
	// exercised under -race in CI; emitted must equal sum of counts, and
	// observed events must be well-formed.
	tr := NewTracer(32)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				tr.Events()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Emit(Kind(i%int(numKinds)), int32(w), uint64(i), 0, 0)
			}
		}(w)
	}
	wg.Wait()
	close(stop)

	snap := tr.Snapshot()
	if snap.Emitted != workers*perWorker {
		t.Fatalf("emitted = %d, want %d", snap.Emitted, workers*perWorker)
	}
	var total uint64
	for _, n := range snap.Counts {
		total += n
	}
	if total != workers*perWorker {
		t.Fatalf("sum of counts = %d, want %d", total, workers*perWorker)
	}
	for _, ev := range snap.Events {
		if ev.Seq == 0 || ev.Seq > workers*perWorker {
			t.Fatalf("bogus event seq %d", ev.Seq)
		}
	}
}

func TestKindTextRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		var back Kind
		if err := back.UnmarshalText(b); err != nil {
			t.Fatalf("unmarshal %q: %v", b, err)
		}
		if back != k {
			t.Fatalf("round trip %v -> %q -> %v", k, b, back)
		}
	}
	var k Kind
	if err := k.UnmarshalText([]byte("nonsense")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestTraceSnapshotJSON(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(KindWALFsync, -1, 4, 0, 2*time.Millisecond)
	b, err := tr.Snapshot().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeTraceSnapshot(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Emitted != 1 || got.Counts["wal_fsync"] != 1 {
		t.Fatalf("round trip: %+v", got)
	}
	if len(got.Events) != 1 || got.Events[0].Kind != KindWALFsync {
		t.Fatalf("events: %+v", got.Events)
	}
}
