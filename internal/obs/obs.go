// Package obs is the live observability plane for the secure-memory
// serving stack: a metrics registry (sharded atomic counters, gauges, and
// log-linear latency histograms), a lock-light ring-buffer event tracer,
// and an HTTP admin plane serving JSON snapshots of both.
//
// The package is built for hot paths. Every instrument is nil-safe — a
// method on a nil *Counter, *Gauge, *Histogram, *Tracer, or *Registry is a
// no-op — so instrumented code carries no conditional wiring: construct the
// instruments when observability is on, leave them nil when it is off, and
// the call sites stay identical. Recording is a handful of atomic
// operations (counters and histogram buckets are striped across
// cache-line-padded cells to keep concurrent writers off each other's
// lines), and the tracer drops events rather than ever blocking a writer.
//
// The paper's evaluation (Figs. 7-13) is all event accounting — overflow
// rates, tree-walk counts, metadata-cache behavior; this package makes the
// same accounting continuously observable on a running morphserve instead
// of only at process exit.
package obs

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// numStripes is the per-instrument stripe count: enough to spread
// concurrent writers, small enough that snapshot merges stay cheap. It is
// a power of two so stripe selection is a mask.
var numStripes = func() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 8 {
		n <<= 1
	}
	return n
}()

// stripeToken is a goroutine-affine stripe assignment. Tokens live in a
// sync.Pool, which is per-P under the hood: a goroutine repeatedly
// recording tends to get the same token back, so its updates keep hitting
// the same stripe while goroutines on other Ps hit different ones.
type stripeToken struct{ n uint32 }

var stripeCursor atomic.Uint32

var stripePool = sync.Pool{New: func() any {
	return &stripeToken{n: stripeCursor.Add(1)}
}}

// stripe picks the calling goroutine's stripe under mask.
func stripe(mask uint32) uint32 {
	t := stripePool.Get().(*stripeToken)
	n := t.n
	stripePool.Put(t)
	return n & mask
}

// padCell is one counter stripe, padded out to its own cache line so
// concurrent writers on different stripes never false-share.
type padCell struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing, striped atomic counter. The zero
// value is not usable; obtain counters from a Registry. All methods are
// safe for concurrent use and no-ops on a nil receiver.
type Counter struct {
	stripes []padCell
	mask    uint32
}

func newCounter() *Counter {
	return &Counter{stripes: make([]padCell, numStripes), mask: uint32(numStripes - 1)}
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.stripes[stripe(c.mask)].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the stripes. Concurrent adds may or may not be included; the
// result is a consistent lower bound of the eventual total.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.stripes {
		sum += c.stripes[i].v.Load()
	}
	return sum
}

// Gauge is an instantaneous signed value (in-flight requests, queue
// depth). All methods are safe for concurrent use and no-ops on a nil
// receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Collector is a pull-time metrics source: invoked at every Snapshot, it
// emits (name, value) counter samples computed from state the registry
// does not own (engine stats, cache stats, admission counters). One
// collector per subsystem keeps a scrape to one stats call per subsystem.
type Collector func(emit func(name string, value uint64))

// Registry is a named collection of instruments. Get-or-create accessors
// hand out shared instruments by name, so independent subsystems recording
// under the same name merge into one stream. Registration takes a mutex;
// recording on the returned instruments is lock-free. All methods are
// safe for concurrent use; on a nil *Registry every accessor returns a nil
// (inert) instrument, so "observability off" needs no call-site branches.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = newCounter()
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// RegisterCollector adds a pull-time collector invoked at every Snapshot.
func (r *Registry) RegisterCollector(fn Collector) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Snapshot is a point-in-time JSON-encodable view of a registry: counter
// and gauge values plus full histogram snapshots (buckets included, so
// two snapshots can be diffed for interval quantiles).
type Snapshot struct {
	TimeUnixNano int64                   `json:"time_unix_nano"`
	Counters     map[string]uint64       `json:"counters"`
	Gauges       map[string]int64        `json:"gauges"`
	Histograms   map[string]HistSnapshot `json:"histograms"`
}

// Snapshot captures every instrument and collector. Instrument pointers
// are copied under the registration mutex; values (and collectors, which
// may take subsystem locks of their own) are read outside it.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		TimeUnixNano: time.Now().UnixNano(),
		Counters:     map[string]uint64{},
		Gauges:       map[string]int64{},
		Histograms:   map[string]HistSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		snap.Histograms[k] = h.Snapshot()
	}
	for _, fn := range collectors {
		fn(func(name string, value uint64) { snap.Counters[name] = value })
	}
	return snap
}

// Encode marshals the snapshot as JSON (the /metricz and wire OBS body).
func (s Snapshot) Encode() ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("obs: encode snapshot: %w", err)
	}
	return b, nil
}

// DecodeSnapshot unmarshals a /metricz or wire OBS body.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: decode snapshot: %w", err)
	}
	return s, nil
}

// FilterTenant returns a copy of the snapshot keeping only the metric
// slice owned by one tenant: every instrument named under the
// tenant.<id>. prefix (the namespace the scheduler and shard collectors
// emit per-tenant counters into). The /metricz?tenant=<id> view is built
// from this, so a tenant-scoped scrape never leaks another tenant's
// traffic counts.
func (s Snapshot) FilterTenant(id string) Snapshot {
	prefix := "tenant." + id + "."
	out := Snapshot{
		TimeUnixNano: s.TimeUnixNano,
		Counters:     map[string]uint64{},
		Gauges:       map[string]int64{},
		Histograms:   map[string]HistSnapshot{},
	}
	for k, v := range s.Counters {
		if strings.HasPrefix(k, prefix) {
			out.Counters[k] = v
		}
	}
	for k, v := range s.Gauges {
		if strings.HasPrefix(k, prefix) {
			out.Gauges[k] = v
		}
	}
	for k, v := range s.Histograms {
		if strings.HasPrefix(k, prefix) {
			out.Histograms[k] = v
		}
	}
	return out
}

// CounterNames returns the snapshot's counter names in sorted order
// (renderers want deterministic output).
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the snapshot's histogram names in sorted order.
func (s Snapshot) HistogramNames() []string {
	names := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
