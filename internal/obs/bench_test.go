// Instrumentation overhead benchmarks. The external test package breaks
// the obs <- secmem import direction so the benchmark can drive the real
// secure-memory write path bare and instrumented and compare:
//
//	go test -bench 'SecmemWrite' -benchtime 2s ./internal/obs/
//
// The acceptance budget is ≤5% on BenchmarkSecmemWrite/instrumented vs
// /bare; the micro-benchmarks below it show why — a histogram record or
// trace emit is tens of nanoseconds against a multi-microsecond
// AES-and-MAC write path.
package obs_test

import (
	"testing"
	"time"

	"github.com/securemem/morphtree/internal/counters"
	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/secmem"
)

var benchKey = []byte("0123456789abcdef")

func benchMemory(b *testing.B, instrument bool) *secmem.Memory {
	b.Helper()
	spec := counters.MorphSpec(true)
	m, err := secmem.New(secmem.Config{
		MemoryBytes: 1 << 20,
		Enc:         spec,
		Tree:        []counters.Spec{spec},
		Key:         benchKey,
	})
	if err != nil {
		b.Fatal(err)
	}
	if instrument {
		reg := obs.NewRegistry()
		m.Instrument(secmem.Instrumentation{
			WriteLatency: reg.Histogram("secmem.write.latency"),
			ReadLatency:  reg.Histogram("secmem.read.latency"),
			LockWait:     reg.Histogram("secmem.lock_wait"),
			Tracer:       obs.NewTracer(4096),
			Shard:        0,
		})
	}
	return m
}

// BenchmarkSecmemWrite compares the secure-memory write path bare vs fully
// instrumented (two histograms + lock-wait + tracer). The ratio of the two
// ns/op figures is the instrumentation overhead the ISSUE budgets at ≤5%.
func BenchmarkSecmemWrite(b *testing.B) {
	for _, mode := range []struct {
		name       string
		instrument bool
	}{
		{"bare", false},
		{"instrumented", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			m := benchMemory(b, mode.instrument)
			line := make([]byte, secmem.LineBytes)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				addr := uint64(i) * 64 % (1 << 20)
				if err := m.Write(addr, line); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(secmem.LineBytes)
		})
	}
}

func BenchmarkSecmemReadWarm(b *testing.B) {
	for _, mode := range []struct {
		name       string
		instrument bool
	}{
		{"bare", false},
		{"instrumented", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			m := benchMemory(b, mode.instrument)
			line := make([]byte, secmem.LineBytes)
			for i := uint64(0); i < 1024; i++ {
				if err := m.Write(i*64, line); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Read(uint64(i) % 1024 * 64); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(secmem.LineBytes)
		})
	}
}

// The raw cost of each instrument, for the overhead budget ledger.

func BenchmarkHistogramRecord(b *testing.B) {
	reg := obs.NewRegistry()
	h := reg.Histogram("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i))
	}
}

func BenchmarkHistogramRecordParallel(b *testing.B) {
	reg := obs.NewRegistry()
	h := reg.Histogram("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var i int64
		for pb.Next() {
			i++
			h.Record(time.Duration(i))
		}
	})
}

func BenchmarkCounterAdd(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkTracerEmit(b *testing.B) {
	tr := obs.NewTracer(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(obs.KindTreeWalk, 0, uint64(i), 0, 0)
	}
}

func BenchmarkNilInstruments(b *testing.B) {
	// The "observability off" cost: nil receivers short-circuit.
	var h *obs.Histogram
	var tr *obs.Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i))
		tr.Emit(obs.KindTreeWalk, 0, 0, 0, 0)
	}
}
