package obs

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Key-material redaction helpers. Logs, trace events, and telemetry
// payloads must never carry raw key bytes (the keytaint analyzer enforces
// this); these are the sanctioned alternatives: a stable one-way
// fingerprint for correlating which key a component holds, and a short
// human-readable description for startup logs. Both are sealed — key
// bytes flow in, only derived non-invertible values flow out.

// fingerprintDomain separates fingerprint hashes from every other SHA-256
// use of a key, so a fingerprint can never collide with a MAC or subkey.
const fingerprintDomain = "morphtree/obs/fingerprint"

// KeyFingerprint returns a stable 64-bit one-way fingerprint of key
// material, safe for logs and trace payloads. Two components holding the
// same key produce the same fingerprint, which is the only property it
// promises: the key is not recoverable from it.
//
//morph:sealed
func KeyFingerprint(key []byte) uint64 {
	h := sha256.New()
	h.Write([]byte(fingerprintDomain))
	h.Write(key)
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// KeyDesc renders key material as a loggable description — length and
// fingerprint, never the bytes.
//
//morph:sealed
func KeyDesc(key []byte) string {
	return fmt.Sprintf("len=%d fp=%016x", len(key), KeyFingerprint(key))
}
