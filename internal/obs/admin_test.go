package obs

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newTestPlane() (*Plane, *Registry, *Tracer) {
	reg := NewRegistry()
	tr := NewTracer(64)
	return &Plane{Registry: reg, Tracer: tr}, reg, tr
}

func TestMetricz(t *testing.T) {
	p, reg, _ := newTestPlane()
	reg.Counter("server.accepted").Add(9)
	reg.Histogram("server.op.read.latency").Record(3 * time.Millisecond)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metricz")
	if err != nil {
		t.Fatalf("GET /metricz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	snap, err := DecodeSnapshot(body)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if snap.Counters["server.accepted"] != 9 {
		t.Fatalf("counter missing: %v", snap.Counters)
	}
	if snap.Histograms["server.op.read.latency"].Count != 1 {
		t.Fatalf("histogram missing: %v", snap.Histograms)
	}
}

func TestTracez(t *testing.T) {
	p, _, tr := newTestPlane()
	tr.Emit(KindOverflow, 2, 1, 64, 0)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/tracez")
	if err != nil {
		t.Fatalf("GET /tracez: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	snap, err := DecodeTraceSnapshot(body)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if snap.Emitted != 1 || snap.Counts["overflow"] != 1 {
		t.Fatalf("trace snapshot: %+v", snap)
	}
}

func TestHealthz(t *testing.T) {
	p, _, _ := newTestPlane()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy plane: status %d", resp.StatusCode)
	}

	p.Health = func() error { return errors.New("draining") }
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy plane: status %d, want 503", resp.StatusCode)
	}
}

func TestPprofExposed(t *testing.T) {
	p, _, _ := newTestPlane()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("GET pprof: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp.StatusCode)
	}
}

func TestServeShutdown(t *testing.T) {
	p, reg, _ := newTestPlane()
	reg.Counter("x").Inc()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Serve(ctx, ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/metricz")
	if err != nil {
		t.Fatalf("GET while serving: %v", err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v on clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
}
