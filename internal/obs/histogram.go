package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram uses a fixed log-linear bucket layout: each power of two is
// split into 2^subBits linear sub-buckets, giving a worst-case relative
// bucket width of 1/2^subBits (~25% with subBits=2) across the full int64
// range. The layout is identical for every histogram, so snapshots from
// different shards or processes merge by element-wise bucket addition.
const (
	subBits = 2
	subMask = (1 << subBits) - 1

	// NumBuckets covers values 0..math.MaxInt64. Values 0..3 get exact
	// buckets; orders 2..62 contribute 4 sub-buckets each, and the index
	// formula (o-1)<<subBits+sub tops out at 61<<2|3 = 247.
	NumBuckets = 62 << subBits
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < 1<<subBits {
		return int(v)
	}
	o := 63 - bits.LeadingZeros64(uint64(v)) // order: position of top bit, >= subBits
	sub := int(v>>(uint(o)-subBits)) & subMask
	return (o-1)<<subBits + sub
}

// BucketLower returns the inclusive lower bound of bucket i.
func BucketLower(i int) int64 {
	if i < 1<<subBits {
		return int64(i)
	}
	o := i>>subBits + 1
	sub := i & subMask
	return int64(1)<<uint(o) | int64(sub)<<uint(o-subBits)
}

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) int64 {
	if i >= NumBuckets-1 {
		return math.MaxInt64
	}
	return BucketLower(i+1) - 1
}

// histStripe is one writer stripe: a full bucket array plus count/sum/max,
// padded so stripes land on distinct cache lines.
type histStripe struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
	_       [56]byte
}

// Histogram is a striped, fixed-layout log-linear histogram of int64
// samples (by convention nanoseconds). Record is a few atomic adds; there
// are no locks anywhere on the record path. The zero value is not usable;
// obtain histograms from a Registry. All methods are safe for concurrent
// use and no-ops on a nil receiver.
type Histogram struct {
	stripes []histStripe
	mask    uint32
}

func newHistogram() *Histogram {
	return &Histogram{stripes: make([]histStripe, numStripes), mask: uint32(numStripes - 1)}
}

// Record adds one duration sample. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	h.RecordValue(int64(d))
}

// RecordValue adds one raw sample (negative values clamp to zero).
func (h *Histogram) RecordValue(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	s := &h.stripes[stripe(h.mask)]
	s.buckets[bucketIndex(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(uint64(v))
	for {
		cur := s.max.Load()
		if uint64(v) <= cur || s.max.CompareAndSwap(cur, uint64(v)) {
			break
		}
	}
}

// Snapshot merges the stripes into a point-in-time view.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	full := make([]uint64, NumBuckets)
	for i := range h.stripes {
		st := &h.stripes[i]
		s.Count += st.count.Load()
		s.Sum += st.sum.Load()
		if m := st.max.Load(); m > s.Max {
			s.Max = m
		}
		for b := 0; b < NumBuckets; b++ {
			full[b] += st.buckets[b].Load()
		}
	}
	// Trim trailing zero buckets: JSON snapshots stay small and merges
	// only walk the populated prefix.
	last := -1
	for b := NumBuckets - 1; b >= 0; b-- {
		if full[b] != 0 {
			last = b
			break
		}
	}
	s.Buckets = full[:last+1]
	s.fillQuantiles()
	return s
}

// HistSnapshot is a mergeable point-in-time histogram view. Buckets holds
// the populated prefix of the fixed layout (trailing zeros trimmed).
// P50/P90/P99 are precomputed for convenience; Quantile answers any q.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Max     uint64   `json:"max"`
	P50     int64    `json:"p50"`
	P90     int64    `json:"p90"`
	P99     int64    `json:"p99"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

func (s *HistSnapshot) fillQuantiles() {
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
}

// Quantile estimates the q-th quantile (0 < q <= 1) as the upper bound of
// the bucket holding the q*Count-th sample, clamped to the observed Max —
// so the estimate is within one bucket width (~25%) of the exact value.
// Returns 0 for an empty snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for b, n := range s.Buckets {
		cum += n
		if cum >= rank {
			hi := BucketUpper(b)
			if s.Max < uint64(math.MaxInt64) && hi > int64(s.Max) {
				hi = int64(s.Max)
			}
			return hi
		}
	}
	if s.Max > uint64(math.MaxInt64) {
		return math.MaxInt64
	}
	return int64(s.Max)
}

// Mean returns the arithmetic mean of the recorded samples, 0 if empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Merge folds other into s element-wise. Because every histogram shares
// one fixed bucket layout, merge-of-snapshots is exactly the snapshot of
// a merged recorder. Quantiles are recomputed.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
	if len(other.Buckets) > len(s.Buckets) {
		grown := make([]uint64, len(other.Buckets))
		copy(grown, s.Buckets)
		s.Buckets = grown
	}
	for b, n := range other.Buckets {
		s.Buckets[b] += n
	}
	s.fillQuantiles()
}

// Delta returns the interval view s minus prev (same histogram sampled
// earlier). Counter-style fields subtract; Max is carried from s since a
// per-interval max is not recoverable from cumulative snapshots.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	var d HistSnapshot
	if s.Count < prev.Count {
		// The histogram restarted; the current snapshot is the delta.
		d = s
		d.fillQuantiles()
		return d
	}
	d.Count = s.Count - prev.Count
	d.Sum = s.Sum - prev.Sum
	d.Max = s.Max
	d.Buckets = make([]uint64, len(s.Buckets))
	copy(d.Buckets, s.Buckets)
	for b, n := range prev.Buckets {
		if b < len(d.Buckets) {
			d.Buckets[b] -= n
		}
	}
	d.fillQuantiles()
	return d
}
