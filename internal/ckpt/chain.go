package ckpt

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
)

// Delta file names encode ancestry — delta.<seq>.<base> — so the sweep
// can reason about chains without opening files: a chain is resolvable
// when every link down to a full snapshot is present, and a delta whose
// ancestry cannot reach a snapshot is an orphan.

// DeltaName names epoch seq's delta segment, cut against base.
func DeltaName(seq, base uint64) string {
	return fmt.Sprintf("delta.%016x.%016x", seq, base)
}

// DeltaPath is DeltaName joined to dir.
func DeltaPath(dir string, seq, base uint64) string {
	return filepath.Join(dir, DeltaName(seq, base))
}

// ParseDeltaName extracts the chain position from a delta file name.
func ParseDeltaName(name string) (seq, base uint64, ok bool) {
	rest, found := strings.CutPrefix(name, "delta.")
	if !found {
		return 0, 0, false
	}
	s, b, found := strings.Cut(rest, ".")
	if !found {
		return 0, 0, false
	}
	seq, err1 := strconv.ParseUint(s, 16, 64)
	base, err2 := strconv.ParseUint(b, 16, 64)
	return seq, base, err1 == nil && err2 == nil
}

// Entry is one delta segment's position in the epoch graph.
type Entry struct {
	Seq, Base uint64
}

// ChainError reports a delta chain that cannot reach a full snapshot: the
// recovery head requires an epoch that is absent (its base snapshot was
// removed, or a link delta is missing). It is a typed, fail-closed error —
// recovery never silently falls back to an older epoch, because the
// missing link means acknowledged state existed that can no longer be
// reconstructed from checkpoints alone.
type ChainError struct {
	// Head is the epoch whose chain is broken; Missing is the absent
	// epoch the chain required.
	Head, Missing uint64
}

func (e *ChainError) Error() string {
	return fmt.Sprintf("ckpt: delta chain for epoch %d is broken: required epoch %d is missing", e.Head, e.Missing)
}

// ResolveChain walks from head back to a full snapshot. snaps is the set
// of full-snapshot epochs on disk, deltas the delta entries. It returns
// the base snapshot epoch and the chain in ascending apply order (empty
// when head is itself a snapshot). A broken walk returns *ChainError.
func ResolveChain(head uint64, snaps map[uint64]bool, deltas map[uint64]Entry) (base uint64, chain []Entry, err error) {
	cur := head
	for !snaps[cur] {
		d, ok := deltas[cur]
		if !ok {
			return 0, nil, &ChainError{Head: head, Missing: cur}
		}
		chain = append(chain, d)
		if d.Base >= cur {
			// A cycle or forward reference can only come from a crafted
			// file name; treat it as a broken chain.
			return 0, nil, &ChainError{Head: head, Missing: d.Base}
		}
		cur = d.Base
	}
	// Reverse into ascending apply order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return cur, chain, nil
}

// Required returns the set of epochs a retained head transitively needs:
// the head itself, every link delta, and the base snapshot. Unresolvable
// heads contribute nothing (their files are orphans the sweep removes).
func Required(heads []uint64, snaps map[uint64]bool, deltas map[uint64]Entry) map[uint64]bool {
	req := make(map[uint64]bool)
	for _, h := range heads {
		base, chain, err := ResolveChain(h, snaps, deltas)
		if err != nil {
			continue
		}
		req[h] = true
		req[base] = true
		for _, d := range chain {
			req[d.Seq] = true
		}
	}
	return req
}
