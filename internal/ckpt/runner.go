package ckpt

import (
	"sync"
	"time"
)

// Target is what the background checkpointer drives — durable.Memory in
// production, fakes in tests.
type Target interface {
	// CheckpointDelta cuts an incremental checkpoint of the dirty lines.
	CheckpointDelta() error
	// Checkpoint cuts a full snapshot (compacting the delta chain).
	Checkpoint() error
	// DeltaChainLen reports how many deltas sit atop the current base
	// snapshot.
	DeltaChainLen() int
}

// Runner periodically cuts delta checkpoints and compacts the chain into
// a full snapshot once it grows past MaxChain — bounding both recovery
// work (base + short chain + WAL tail) and disk amplification. The cut
// itself stalls writers only for the in-memory dirty-line copy; all file
// I/O happens outside the engine locks (see durable.CheckpointDelta).
type Runner struct {
	t        Target
	interval time.Duration
	maxChain int
	onErr    func(error)

	stopc chan struct{}
	wg    sync.WaitGroup
}

// NewRunner starts the background checkpointer. interval is the delta
// cadence; maxChain the compaction threshold (values < 1 default to 8).
// onErr, when non-nil, receives checkpoint failures (the runner keeps
// going — a transient disk error must not end checkpointing forever).
func NewRunner(t Target, interval time.Duration, maxChain int, onErr func(error)) *Runner {
	if maxChain < 1 {
		maxChain = 8
	}
	r := &Runner{t: t, interval: interval, maxChain: maxChain, onErr: onErr, stopc: make(chan struct{})}
	r.wg.Add(1)
	go r.loop()
	return r
}

func (r *Runner) loop() {
	defer r.wg.Done()
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.stopc:
			return
		case <-t.C:
			var err error
			if r.t.DeltaChainLen() >= r.maxChain {
				err = r.t.Checkpoint()
			} else {
				err = r.t.CheckpointDelta()
			}
			if err != nil && r.onErr != nil {
				r.onErr(err)
			}
		}
	}
}

// Stop halts the runner and waits for any in-flight checkpoint to finish.
func (r *Runner) Stop() {
	select {
	case <-r.stopc:
	default:
		close(r.stopc)
	}
	r.wg.Wait()
}
