package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"github.com/securemem/morphtree/internal/secmem"
)

// Delta segment: one incremental checkpoint, chained to the epoch it was
// cut against. The payload travels inside the authenticated stream codec
// (CRC-framed, whole-file HMAC'd) under a context string that embeds both
// its own epoch and its base — a delta renamed to a different position in
// the chain fails authentication, exactly like a WAL segment moved across
// epochs.
//
// Payload layout (inside the stream, integers little-endian):
//
//	u64 seq | u64 base | u64 nshards |
//	nshards × (u64 coveredLSN, u64 coveredWrites) |
//	nshards × ( u64 nlines |
//	            nlines × (i32 level | u64 index | u32 len | line | u64 mac) )
const deltaLineMax = 4096 // sanity cap on a single line's length field

// DeltaHeader describes a delta segment's position and coverage.
type DeltaHeader struct {
	// Seq is this delta's epoch; Base is the epoch it was cut against
	// (the previous full snapshot or delta in the chain).
	Seq, Base uint64
	// CoveredLSN / CoveredWrites are the per-shard journal positions the
	// chain up to and including this delta covers; recovery replays the
	// WAL tail from CoveredLSN+1.
	CoveredLSN, CoveredWrites []uint64
}

func deltaContext(seq, base uint64) string {
	return fmt.Sprintf("morphtree/ckpt/delta/%d/%d", seq, base)
}

// HibernateContext is the stream context for whole-shard hibernate /
// migration shipping.
const HibernateContext = "morphtree/ckpt/hibernate"

// WriteDelta persists a delta segment at path via temp file, fsync, and
// atomic rename (the caller fsyncs the directory). lines holds each
// shard's dirty capture; key should be a role-derived delta key.
func WriteDelta(path string, key []byte, hdr DeltaHeader, lines [][]secmem.DirtyLine) error {
	if len(hdr.CoveredLSN) != len(lines) || len(hdr.CoveredWrites) != len(lines) {
		return fmt.Errorf("ckpt: delta header covers %d shards, have %d", len(hdr.CoveredLSN), len(lines))
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ckpt: delta: %w", err)
	}
	werr := func() error {
		sw, err := NewStreamWriter(f, key, deltaContext(hdr.Seq, hdr.Base))
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(sw)
		writeU64 := func(v uint64) {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], v)
			bw.Write(b[:])
		}
		writeU64(hdr.Seq)
		writeU64(hdr.Base)
		writeU64(uint64(len(lines)))
		for i := range lines {
			writeU64(hdr.CoveredLSN[i])
			writeU64(hdr.CoveredWrites[i])
		}
		for _, sh := range lines {
			writeU64(uint64(len(sh)))
			for _, d := range sh {
				var lvl [4]byte
				binary.LittleEndian.PutUint32(lvl[:], uint32(d.Level))
				bw.Write(lvl[:])
				writeU64(d.Index)
				var ln [4]byte
				binary.LittleEndian.PutUint32(ln[:], uint32(len(d.Line)))
				bw.Write(ln[:])
				bw.Write(d.Line)
				writeU64(d.MAC)
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if err := sw.Close(); err != nil {
			return err
		}
		return f.Sync()
	}()
	if werr != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("ckpt: delta %s: %w", tmp, werr)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("ckpt: delta %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("ckpt: delta rename: %w", err)
	}
	return nil
}

// ReadDelta authenticates and decodes the delta segment at path. seq and
// base come from the file name; the authenticated payload must embed the
// same values (the stream context already binds them into the MAC, so a
// mismatch here means a bug, but it is checked all the same).
func ReadDelta(path string, key []byte, seq, base uint64) (DeltaHeader, [][]secmem.DirtyLine, error) {
	var hdr DeltaHeader
	f, err := os.Open(path)
	if err != nil {
		return hdr, nil, fmt.Errorf("ckpt: read delta: %w", err)
	}
	defer f.Close()
	sr, err := NewStreamReader(f, key, deltaContext(seq, base))
	if err != nil {
		return hdr, nil, err
	}
	br := bufio.NewReader(sr)
	bad := func(reason string) error {
		return &secmem.IntegrityError{Level: -1, Index: seq, Reason: "delta " + path + ": " + reason}
	}
	readU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, bad("payload truncated")
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, bad("payload truncated")
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	if hdr.Seq, err = readU64(); err != nil {
		return hdr, nil, err
	}
	if hdr.Base, err = readU64(); err != nil {
		return hdr, nil, err
	}
	if hdr.Seq != seq || hdr.Base != base {
		return hdr, nil, bad(fmt.Sprintf("embedded chain position %d←%d does not match name %d←%d", hdr.Seq, hdr.Base, seq, base))
	}
	nsh, err := readU64()
	if err != nil {
		return hdr, nil, err
	}
	if nsh == 0 || nsh > 1<<16 {
		return hdr, nil, bad(fmt.Sprintf("unreasonable shard count %d", nsh))
	}
	hdr.CoveredLSN = make([]uint64, nsh)
	hdr.CoveredWrites = make([]uint64, nsh)
	for i := range hdr.CoveredLSN {
		if hdr.CoveredLSN[i], err = readU64(); err != nil {
			return hdr, nil, err
		}
		if hdr.CoveredWrites[i], err = readU64(); err != nil {
			return hdr, nil, err
		}
	}
	lines := make([][]secmem.DirtyLine, nsh)
	for i := range lines {
		n, err := readU64()
		if err != nil {
			return hdr, nil, err
		}
		if n > 1<<32 {
			return hdr, nil, bad(fmt.Sprintf("unreasonable line count %d", n))
		}
		sh := make([]secmem.DirtyLine, 0, n)
		for j := uint64(0); j < n; j++ {
			lvl, err := readU32()
			if err != nil {
				return hdr, nil, err
			}
			idx, err := readU64()
			if err != nil {
				return hdr, nil, err
			}
			ln, err := readU32()
			if err != nil {
				return hdr, nil, err
			}
			if ln > deltaLineMax {
				return hdr, nil, bad(fmt.Sprintf("line length %d exceeds limit", ln))
			}
			line := make([]byte, ln)
			if _, err := io.ReadFull(br, line); err != nil {
				return hdr, nil, bad("payload truncated")
			}
			mac, err := readU64()
			if err != nil {
				return hdr, nil, err
			}
			sh = append(sh, secmem.DirtyLine{Level: int32(lvl), Index: idx, Line: line, MAC: mac})
		}
		lines[i] = sh
	}
	// The MAC trailer sits after the payload; drain to verify it before
	// trusting anything decoded above.
	if err := sr.Drain(); err != nil {
		return hdr, nil, err
	}
	return hdr, lines, nil
}
