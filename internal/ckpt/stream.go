// Package ckpt (morphckpt) is the incremental-checkpoint layer under
// internal/durable: a streaming authenticated codec (hibernate/restore and
// migration shipping), a delta-segment format chaining incremental
// checkpoints to a base epoch, chain resolution for recovery and the
// stale-epoch sweep, and a background checkpoint runner. It knows nothing
// about WALs or committers — durable composes it.
//
// Everything here fails closed the same way the rest of the tree does:
// framing damage, MAC mismatch, or role confusion (a stream decoded under
// the wrong context) surfaces as *secmem.IntegrityError.
package ckpt

import (
	"bufio"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"github.com/securemem/morphtree/internal/secmem"
)

// Stream format (integers little-endian):
//
//	magic "MCST" | u64 version | u16 len(context) | context |
//	frames: u32 payloadLen | payload | u32 crc32c(payload) |
//	end frame: u32 0 | 32-byte HMAC-SHA256 over everything before it
//
// Each frame is CRC-framed so corruption is localized and detected before
// buffering unbounded garbage; the trailing keyed MAC authenticates the
// whole stream (including the header, so version/context are covered).
// The context string binds the key to a role — a hibernate stream cannot
// be replayed as a delta segment even under the same master key.
const (
	streamMagic   = "MCST"
	streamVersion = 1
	streamMACLen  = sha256.Size

	// ChunkBytes is the frame payload size: large enough to amortize
	// framing, small enough that encode/decode memory stays bounded no
	// matter how big the shipped state is.
	ChunkBytes = 64 << 10

	// maxFrame rejects absurd frame lengths before allocating.
	maxFrame = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func tamper(context, reason string) error {
	return &secmem.IntegrityError{Level: -1, Reason: "ckpt stream (" + context + "): " + reason}
}

// StreamWriter frames and authenticates a byte stream. Close is mandatory:
// it flushes the final partial frame and appends the end frame + MAC, and
// a stream without them fails decoding (a truncated ship is never silently
// accepted as complete).
type StreamWriter struct {
	w       io.Writer
	mac     hash.Hash
	context string
	buf     [ChunkBytes]byte
	n       int
	closed  bool
}

// NewStreamWriter writes the stream header and returns the framing writer.
func NewStreamWriter(w io.Writer, key []byte, context string) (*StreamWriter, error) {
	if len(context) == 0 || len(context) > 1<<10 {
		return nil, fmt.Errorf("ckpt: stream context must be 1..1024 bytes, got %d", len(context))
	}
	sw := &StreamWriter{w: w, mac: hmac.New(sha256.New, key), context: context}
	hdr := make([]byte, 0, len(streamMagic)+10+len(context))
	hdr = append(hdr, streamMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, streamVersion)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(context)))
	hdr = append(hdr, context...)
	if err := sw.emit(hdr); err != nil {
		return nil, err
	}
	return sw, nil
}

// emit writes raw bytes to both the sink and the MAC.
func (sw *StreamWriter) emit(p []byte) error {
	sw.mac.Write(p)
	if _, err := sw.w.Write(p); err != nil {
		return fmt.Errorf("ckpt: stream write: %w", err)
	}
	return nil
}

// Write implements io.Writer, buffering into ChunkBytes frames.
func (sw *StreamWriter) Write(p []byte) (int, error) {
	if sw.closed {
		return 0, fmt.Errorf("ckpt: write after Close")
	}
	total := len(p)
	for len(p) > 0 {
		n := copy(sw.buf[sw.n:], p)
		sw.n += n
		p = p[n:]
		if sw.n == ChunkBytes {
			if err := sw.flushFrame(); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

func (sw *StreamWriter) flushFrame() error {
	if sw.n == 0 {
		return nil
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(sw.n))
	if err := sw.emit(hdr[:]); err != nil {
		return err
	}
	if err := sw.emit(sw.buf[:sw.n]); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(sw.buf[:sw.n], castagnoli))
	if err := sw.emit(crc[:]); err != nil {
		return err
	}
	sw.n = 0
	return nil
}

// Close flushes the final frame and writes the end frame + MAC trailer.
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return nil
	}
	sw.closed = true
	if err := sw.flushFrame(); err != nil {
		return err
	}
	var end [4]byte
	if err := sw.emit(end[:]); err != nil {
		return err
	}
	// The trailer authenticates everything including the end frame; it is
	// not itself MAC'd (it IS the MAC).
	if _, err := sw.w.Write(sw.mac.Sum(nil)); err != nil {
		return fmt.Errorf("ckpt: stream trailer: %w", err)
	}
	return nil
}

// StreamReader decodes and authenticates a StreamWriter stream. Reads
// return data as frames verify; when the end frame arrives the whole-
// stream MAC is checked and Read returns io.EOF only if it matches —
// truncation, corruption, or a forged trailer surface as
// *secmem.IntegrityError.
type StreamReader struct {
	r       *bufio.Reader
	raw     io.Reader
	mac     hash.Hash
	context string
	frame   []byte
	off     int
	done    bool
	err     error
}

// NewStreamReader consumes and verifies the stream header. The context
// must match the writer's: a mismatch means the stream is being decoded
// under the wrong role and is rejected as tampering.
func NewStreamReader(r io.Reader, key []byte, context string) (*StreamReader, error) {
	sr := &StreamReader{r: bufio.NewReader(r), raw: r, mac: hmac.New(sha256.New, key), context: context}
	hdr := make([]byte, len(streamMagic)+10)
	if _, err := io.ReadFull(sr.r, hdr); err != nil {
		return nil, tamper(context, "header truncated")
	}
	sr.mac.Write(hdr)
	if string(hdr[:len(streamMagic)]) != streamMagic {
		return nil, tamper(context, "bad magic")
	}
	if v := binary.LittleEndian.Uint64(hdr[len(streamMagic):]); v != streamVersion {
		return nil, tamper(context, fmt.Sprintf("unsupported version %d", v))
	}
	clen := int(binary.LittleEndian.Uint16(hdr[len(streamMagic)+8:]))
	ctx := make([]byte, clen)
	if _, err := io.ReadFull(sr.r, ctx); err != nil {
		return nil, tamper(context, "context truncated")
	}
	sr.mac.Write(ctx)
	if string(ctx) != context {
		return nil, tamper(context, fmt.Sprintf("stream context %q does not match role %q", ctx, context))
	}
	return sr, nil
}

// Read implements io.Reader.
func (sr *StreamReader) Read(p []byte) (int, error) {
	if sr.err != nil {
		return 0, sr.err
	}
	for sr.off == len(sr.frame) {
		if sr.done {
			sr.err = io.EOF
			return 0, io.EOF
		}
		if err := sr.nextFrame(); err != nil {
			sr.err = err
			return 0, err
		}
	}
	n := copy(p, sr.frame[sr.off:])
	sr.off += n
	return n, nil
}

func (sr *StreamReader) nextFrame() error {
	var hdr [4]byte
	if _, err := io.ReadFull(sr.r, hdr[:]); err != nil {
		return tamper(sr.context, "frame header truncated")
	}
	sr.mac.Write(hdr[:])
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		// End frame: verify the whole-stream MAC.
		trailer := make([]byte, streamMACLen)
		if _, err := io.ReadFull(sr.r, trailer); err != nil {
			return tamper(sr.context, "MAC trailer truncated")
		}
		if !hmac.Equal(sr.mac.Sum(nil), trailer) {
			return tamper(sr.context, "stream MAC mismatch (tampering)")
		}
		sr.done = true
		sr.frame, sr.off = nil, 0
		return nil
	}
	if n > maxFrame {
		return tamper(sr.context, fmt.Sprintf("frame length %d exceeds limit", n))
	}
	buf := make([]byte, int(n)+4)
	if _, err := io.ReadFull(sr.r, buf); err != nil {
		return tamper(sr.context, "frame truncated")
	}
	sr.mac.Write(buf)
	payload, crcGot := buf[:n], binary.LittleEndian.Uint32(buf[n:])
	if crc32.Checksum(payload, castagnoli) != crcGot {
		return tamper(sr.context, "frame CRC mismatch")
	}
	sr.frame, sr.off = payload, 0
	return nil
}

// Drain verifies the remainder of the stream (through the MAC trailer)
// while discarding the data — callers that stopped consuming early use it
// to confirm authenticity before trusting what they already read.
func (sr *StreamReader) Drain() error {
	_, err := io.Copy(io.Discard, sr)
	return err
}
