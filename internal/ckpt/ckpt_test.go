package ckpt

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"github.com/securemem/morphtree/internal/secmem"
)

var testKey = bytes.Repeat([]byte{7}, 32)

func TestStreamRoundTrip(t *testing.T) {
	for _, size := range []int{0, 1, 100, ChunkBytes, ChunkBytes + 1, 3*ChunkBytes + 17} {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		var buf bytes.Buffer
		sw, err := NewStreamWriter(&buf, testKey, "test/roundtrip")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sw.Write(payload); err != nil {
			t.Fatal(err)
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		sr, err := NewStreamReader(&buf, testKey, "test/roundtrip")
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(sr)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("size %d: payload mismatch", size)
		}
	}
}

func streamBytes(t *testing.T, context string, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, testKey, context)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStreamFailsClosed(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, ChunkBytes+100)
	good := streamBytes(t, "test/tamper", payload)

	wantIntegrity := func(name string, raw []byte, context string) {
		t.Helper()
		sr, err := NewStreamReader(bytes.NewReader(raw), testKey, context)
		if err == nil {
			_, err = io.ReadAll(sr)
		}
		var ie *secmem.IntegrityError
		if !errors.As(err, &ie) {
			t.Fatalf("%s: got %v, want IntegrityError", name, err)
		}
	}

	// Flip one payload byte: the frame CRC catches it.
	flipped := append([]byte(nil), good...)
	flipped[len(streamMagic)+10+len("test/tamper")+4+10] ^= 0x01
	wantIntegrity("bit flip", flipped, "test/tamper")

	// Truncate before the trailer: never silently accepted.
	wantIntegrity("truncated", good[:len(good)-1], "test/tamper")
	wantIntegrity("no trailer", good[:len(good)-streamMACLen-4], "test/tamper")

	// Wrong role: a stream decoded under another context is rejected.
	wantIntegrity("role confusion", good, "test/other")

	// Wrong key: trailer MAC mismatch.
	sr, err := NewStreamReader(bytes.NewReader(good), bytes.Repeat([]byte{9}, 32), "test/tamper")
	if err == nil {
		_, err = io.ReadAll(sr)
	}
	var ie *secmem.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("wrong key: got %v, want IntegrityError", err)
	}
}

func TestDeltaFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	hdr := DeltaHeader{
		Seq: 5, Base: 4,
		CoveredLSN:    []uint64{10, 20},
		CoveredWrites: []uint64{9, 18},
	}
	lines := [][]secmem.DirtyLine{
		{
			{Level: -1, Index: 3, Line: bytes.Repeat([]byte{1}, 64), MAC: 0xDEAD},
			{Level: 0, Index: 7, Line: bytes.Repeat([]byte{2}, 64)},
		},
		{
			{Level: 2, Index: 0, Line: bytes.Repeat([]byte{3}, 64)},
		},
	}
	path := DeltaPath(dir, 5, 4)
	if err := WriteDelta(path, testKey, hdr, lines); err != nil {
		t.Fatal(err)
	}
	got, gotLines, err := ReadDelta(path, testKey, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 5 || got.Base != 4 || got.CoveredLSN[1] != 20 || got.CoveredWrites[0] != 9 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(gotLines) != 2 || len(gotLines[0]) != 2 || len(gotLines[1]) != 1 {
		t.Fatalf("line shape mismatch")
	}
	d := gotLines[0][0]
	if d.Level != -1 || d.Index != 3 || d.MAC != 0xDEAD || !bytes.Equal(d.Line, lines[0][0].Line) {
		t.Fatalf("line content mismatch: %+v", d)
	}

	// A delta renamed to another chain position fails authentication.
	moved := DeltaPath(dir, 6, 5)
	if err := os.Rename(path, moved); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReadDelta(moved, testKey, 6, 5)
	var ie *secmem.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("renamed delta: got %v, want IntegrityError", err)
	}

	// At-rest bit flip fails authentication.
	if err := os.Rename(moved, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReadDelta(path, testKey, 5, 4)
	if !errors.As(err, &ie) {
		t.Fatalf("tampered delta: got %v, want IntegrityError", err)
	}
}

func TestParseDeltaName(t *testing.T) {
	name := DeltaName(0x1f, 0x1e)
	seq, base, ok := ParseDeltaName(name)
	if !ok || seq != 0x1f || base != 0x1e {
		t.Fatalf("ParseDeltaName(%q) = %d,%d,%v", name, seq, base, ok)
	}
	for _, bad := range []string{"delta.", "delta.zz.11", "delta.0011", "snapshot.0001", "delta.1.2.3x"} {
		if _, _, ok := ParseDeltaName(bad); ok && bad != "delta.1.2.3x" {
			t.Fatalf("ParseDeltaName(%q) accepted", bad)
		}
	}
	if filepath.Base(DeltaPath("/x", 1, 2)) != DeltaName(1, 2) {
		t.Fatal("DeltaPath does not end in DeltaName")
	}
}

func TestResolveChain(t *testing.T) {
	snaps := map[uint64]bool{3: true, 7: true}
	deltas := map[uint64]Entry{
		4: {Seq: 4, Base: 3},
		5: {Seq: 5, Base: 4},
		6: {Seq: 6, Base: 5},
		9: {Seq: 9, Base: 8}, // orphan: base 8 missing
	}
	base, chain, err := ResolveChain(6, snaps, deltas)
	if err != nil || base != 3 || len(chain) != 3 {
		t.Fatalf("chain from 6: base=%d len=%d err=%v", base, len(chain), err)
	}
	if chain[0].Seq != 4 || chain[2].Seq != 6 {
		t.Fatalf("chain order wrong: %+v", chain)
	}
	base, chain, err = ResolveChain(7, snaps, deltas)
	if err != nil || base != 7 || len(chain) != 0 {
		t.Fatalf("snapshot head: base=%d len=%d err=%v", base, len(chain), err)
	}
	_, _, err = ResolveChain(9, snaps, deltas)
	var ce *ChainError
	if !errors.As(err, &ce) || ce.Head != 9 || ce.Missing != 8 {
		t.Fatalf("broken chain: got %v", err)
	}

	req := Required([]uint64{6, 9}, snaps, deltas)
	for _, want := range []uint64{3, 4, 5, 6} {
		if !req[want] {
			t.Fatalf("Required missing epoch %d", want)
		}
	}
	if req[9] || req[8] {
		t.Fatal("Required kept an unresolvable head")
	}
}

type fakeTarget struct {
	deltas, fulls atomic.Int64
	chain         atomic.Int64
}

func (f *fakeTarget) CheckpointDelta() error { f.deltas.Add(1); f.chain.Add(1); return nil }
func (f *fakeTarget) Checkpoint() error      { f.fulls.Add(1); f.chain.Store(0); return nil }
func (f *fakeTarget) DeltaChainLen() int     { return int(f.chain.Load()) }

func TestRunnerCompactsChain(t *testing.T) {
	ft := &fakeTarget{}
	r := NewRunner(ft, time.Millisecond, 3, nil)
	deadline := time.Now().Add(5 * time.Second)
	for ft.fulls.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	if ft.fulls.Load() < 2 {
		t.Fatalf("runner never compacted: %d deltas, %d fulls", ft.deltas.Load(), ft.fulls.Load())
	}
	if ft.deltas.Load() == 0 {
		t.Fatal("runner cut no deltas")
	}
	// Stop is idempotent.
	r.Stop()
}
