package shard

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkShardScaling measures aggregate write throughput under parallel
// clients as the shard count grows. With one shard every client serializes
// on the single engine mutex; with N shards, lines interleaved across
// engines proceed concurrently, so on a multi-core runner aggregate
// ops/sec should rise with N — the scaling claim behind the serving layer.
func BenchmarkShardScaling(b *testing.B) {
	const memBytes = 1 << 22
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d/write", n), func(b *testing.B) {
			s := mustNew(b, testConfig(b, n, memBytes, "morph128"))
			const lines = uint64(memBytes / LineBytes)
			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				line := fill(0, 1)
				for pb.Next() {
					i := next.Add(1)
					addr := (i % lines) * LineBytes
					if err := s.Write(addr, line); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.ReportMetric(float64(s.Stats().Writes)/b.Elapsed().Seconds(), "writes/s")
		})
		b.Run(fmt.Sprintf("shards=%d/read", n), func(b *testing.B) {
			s := mustNew(b, testConfig(b, n, memBytes, "morph128"))
			const warm = 1 << 10
			for i := uint64(0); i < warm; i++ {
				if err := s.Write(i*LineBytes, fill(i, 1)); err != nil {
					b.Fatal(err)
				}
			}
			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := next.Add(1)
					addr := (i % warm) * LineBytes
					if _, err := s.Read(addr); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
