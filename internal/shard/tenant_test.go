package shard

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/secmem"
)

// TestTenantRouting covers the sharded tenant surface: registration,
// per-tenant key-domain routing across shards, and cross-tenant denial
// with a typed IntegrityError on every shard.
func TestTenantRouting(t *testing.T) {
	s := mustNew(t, testConfig(t, 4, 1<<16, "morph128"))
	if err := s.RegisterTenants([]string{"alpha", "beta"}); err != nil {
		t.Fatal(err)
	}
	if got := s.Tenants(); len(got) != 2 {
		t.Fatalf("Tenants() = %v", got)
	}

	// One line per shard: striped addresses land on different shards.
	for i := uint64(0); i < 4; i++ {
		addr := i * secmem.LineBytes
		line := bytes.Repeat([]byte{byte(0xA0 + i)}, secmem.LineBytes)
		if err := s.TenantWrite("alpha", addr, line); err != nil {
			t.Fatalf("shard %d write: %v", i, err)
		}
		got, err := s.TenantRead("alpha", addr)
		if err != nil {
			t.Fatalf("shard %d owner read: %v", i, err)
		}
		if !bytes.Equal(got, line) {
			t.Fatalf("shard %d wrong contents", i)
		}
		_, err = s.TenantRead("beta", addr)
		var ie *secmem.IntegrityError
		if !errors.As(err, &ie) {
			t.Fatalf("shard %d cross-tenant read = %v, want *IntegrityError", i, err)
		}
		// The default (single-tenant) path must be denied too.
		if _, err := s.Read(addr); err == nil {
			t.Fatalf("shard %d default read of tenant line succeeded", i)
		}
	}

	if _, err := s.TenantRead("nobody", 0); err == nil {
		t.Fatal("unknown tenant read succeeded")
	}
	if err := s.TenantWrite("nobody", 0, make([]byte, secmem.LineBytes)); err == nil {
		t.Fatal("unknown tenant write succeeded")
	}
	if err := s.RegisterTenants([]string{"dup", "dup"}); err == nil {
		t.Fatal("duplicate tenant ids accepted")
	}
}

// TestTenantMetrics checks the per-tenant traffic collector: reads and
// writes aggregate across shards under the tenant.<id>. namespace.
func TestTenantMetrics(t *testing.T) {
	cfg := testConfig(t, 2, 1<<15, "morph128")
	reg := obs.NewRegistry()
	cfg.Obs = reg
	s := mustNew(t, cfg)
	if err := s.RegisterTenants([]string{"alpha"}); err != nil {
		t.Fatal(err)
	}
	s.RegisterMetrics(reg)
	line := make([]byte, secmem.LineBytes)
	for i := uint64(0); i < 4; i++ {
		if err := s.TenantWrite("alpha", i*secmem.LineBytes, line); err != nil {
			t.Fatal(err)
		}
		if _, err := s.TenantRead("alpha", i*secmem.LineBytes); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	for _, name := range []string{"tenant.alpha.reads", "tenant.alpha.writes"} {
		if got := snap.Counters[name]; got != 4 {
			t.Errorf("%s = %d, want 4 (counters: %v)", name, got, snap.CounterNames())
		}
	}
	agg := s.Stats()
	if agg.Tenants["alpha"] != (secmem.TenantOps{Reads: 4, Writes: 4}) {
		t.Fatalf("aggregated tenant ops = %+v", agg.Tenants["alpha"])
	}
}

// TestTenantKeyDomainsDiffer guards the derivation: distinct tenants on
// the same shard must get distinct domains (a shared key would silently
// void isolation), and the same tenant on distinct shards likewise.
func TestTenantKeyDomainsDiffer(t *testing.T) {
	s := mustNew(t, testConfig(t, 2, 1<<15, "morph128"))
	ids := make([]string, 3)
	for i := range ids {
		ids[i] = fmt.Sprintf("t%d", i)
	}
	if err := s.RegisterTenants(ids); err != nil {
		t.Fatal(err)
	}
	// Write the same plaintext at the same address under each tenant; the
	// engine rejects any other tenant reading it back, which is only
	// possible if every tenant's domain key differs.
	line := bytes.Repeat([]byte{0x77}, secmem.LineBytes)
	for _, id := range ids {
		if err := s.TenantWrite(id, 0, line); err != nil {
			t.Fatal(err)
		}
		for _, other := range ids {
			_, err := s.TenantRead(other, 0)
			if other == id && err != nil {
				t.Fatalf("owner %s read: %v", other, err)
			}
			if other != id && err == nil {
				t.Fatalf("tenant %s read %s's line", other, id)
			}
		}
	}
}
