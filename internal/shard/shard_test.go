package shard

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"github.com/securemem/morphtree/internal/secmem"
)

var testKey = []byte("0123456789abcdef")

func testConfig(t testing.TB, shards int, memBytes uint64, org string) Config {
	t.Helper()
	enc, tree, err := Organization(org)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Shards: shards,
		Mem: secmem.Config{
			MemoryBytes: memBytes,
			Enc:         enc,
			Tree:        tree,
			Key:         testKey,
		},
	}
}

func mustNew(t testing.TB, cfg Config) *Sharded {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fill produces a deterministic 64-byte line for an address and sequence.
func fill(addr, seq uint64) []byte {
	line := make([]byte, LineBytes)
	for i := 0; i < LineBytes; i += 16 {
		binary.LittleEndian.PutUint64(line[i:], addr^seq)
		binary.LittleEndian.PutUint64(line[i+8:], seq*0x9e3779b97f4a7c15+uint64(i))
	}
	return line
}

func TestRoundTripAcrossShardCounts(t *testing.T) {
	const memBytes = 1 << 14
	for _, n := range []int{1, 2, 4, 8} {
		s := mustNew(t, testConfig(t, n, memBytes, "morph128"))
		for addr := uint64(0); addr < memBytes; addr += LineBytes {
			if err := s.Write(addr, fill(addr, 1)); err != nil {
				t.Fatalf("shards=%d write %#x: %v", n, addr, err)
			}
		}
		for addr := uint64(0); addr < memBytes; addr += LineBytes {
			got, err := s.Read(addr)
			if err != nil {
				t.Fatalf("shards=%d read %#x: %v", n, addr, err)
			}
			if !bytes.Equal(got, fill(addr, 1)) {
				t.Fatalf("shards=%d addr %#x: content mismatch", n, addr)
			}
		}
		if err := s.VerifyAll(); err != nil {
			t.Fatalf("shards=%d verify: %v", n, err)
		}
	}
}

func TestInterleavingSpreadsLines(t *testing.T) {
	const n = 4
	s := mustNew(t, testConfig(t, n, 1<<14, "sc64"))
	for addr := uint64(0); addr < 1<<14; addr += LineBytes {
		want := int(addr / LineBytes % n)
		got, err := s.ShardOf(addr)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("addr %#x: shard %d, want %d", addr, got, want)
		}
		if err := s.Write(addr, fill(addr, 7)); err != nil {
			t.Fatal(err)
		}
	}
	per := s.ShardStats()
	for i, st := range per {
		if st.Writes != (1<<14)/LineBytes/n {
			t.Fatalf("shard %d served %d writes, want %d", i, st.Writes, (1<<14)/LineBytes/n)
		}
	}
}

func TestBadGeometryAndAddresses(t *testing.T) {
	if _, err := New(testConfig(t, 0, 1<<14, "sc64")); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := New(testConfig(t, 3, 1<<14, "sc64")); err == nil {
		t.Fatal("capacity not divisible by shard stride accepted")
	}
	cfg := testConfig(t, 2, 1<<14, "sc64")
	cfg.Mem.Key = []byte("short")
	if _, err := New(cfg); err == nil {
		t.Fatal("bad master key accepted")
	}
	s := mustNew(t, testConfig(t, 2, 1<<14, "sc64"))
	if err := s.Write(13, fill(0, 0)); err == nil {
		t.Fatal("unaligned address accepted")
	}
	if _, err := s.Read(1 << 20); err == nil {
		t.Fatal("out-of-range address accepted")
	}
}

// TestShardKeysDiffer checks that two shards encrypt the same plaintext at
// the same local address to different ciphertexts: the sub-key derivation
// actually separates the shards' crypto domains.
func TestShardKeysDiffer(t *testing.T) {
	s := mustNew(t, testConfig(t, 2, 1<<14, "sc64"))
	line := fill(0x40, 3)
	// Global lines 0 and 1 land at local line 0 of shards 0 and 1.
	if err := s.Write(0, line); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(LineBytes, line); err != nil {
		t.Fatal(err)
	}
	ct0, ok0 := s.Shard(0).Store().DataLine(0)
	ct1, ok1 := s.Shard(1).Store().DataLine(0)
	if !ok0 || !ok1 {
		t.Fatal("ciphertexts missing from stores")
	}
	if bytes.Equal(ct0, ct1) {
		t.Fatal("identical ciphertext in two shards: sub-keys are not independent")
	}
}

// TestTamperFailsClosedPerShard corrupts one shard's store and checks that
// only addresses interleaved into that shard fail, while every other shard
// keeps serving verified reads.
func TestTamperFailsClosedPerShard(t *testing.T) {
	const n = 4
	s := mustNew(t, testConfig(t, n, 1<<14, "morph128"))
	for addr := uint64(0); addr < n*8*LineBytes; addr += LineBytes {
		if err := s.Write(addr, fill(addr, 2)); err != nil {
			t.Fatal(err)
		}
	}
	victim := uint64(2 * LineBytes) // global line 2 -> shard 2, local line 0
	if !s.FlipDataBit(victim, 5, 3) {
		t.Fatal("tamper target missing")
	}
	_, err := s.Read(victim)
	var ie *secmem.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("tampered read returned %v, want *secmem.IntegrityError", err)
	}
	for addr := uint64(0); addr < n*8*LineBytes; addr += LineBytes {
		if addr == victim {
			continue
		}
		got, err := s.Read(addr)
		if err != nil {
			t.Fatalf("untampered addr %#x failed: %v", addr, err)
		}
		if !bytes.Equal(got, fill(addr, 2)) {
			t.Fatalf("untampered addr %#x: content mismatch", addr)
		}
	}
}

func TestAggregateStats(t *testing.T) {
	const n = 4
	s := mustNew(t, testConfig(t, n, 1<<14, "morph128"))
	const writes = 64
	for i := 0; i < writes; i++ {
		if err := s.Write(uint64(i)*LineBytes, fill(uint64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < writes; i++ {
		if _, err := s.Read(uint64(i) * LineBytes); err != nil {
			t.Fatal(err)
		}
	}
	agg := s.Stats()
	if agg.Writes != writes || agg.Reads != writes {
		t.Fatalf("aggregate reads/writes = %d/%d, want %d/%d", agg.Reads, agg.Writes, writes, writes)
	}
	var sum uint64
	for _, st := range s.ShardStats() {
		sum += st.Writes
	}
	if sum != agg.Writes {
		t.Fatalf("per-shard writes sum %d != aggregate %d", sum, agg.Writes)
	}
	if len(agg.Increments) == 0 || agg.Increments[0] != writes {
		t.Fatalf("aggregate level-0 increments = %v, want %d", agg.Increments, writes)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := testConfig(t, 4, 1<<14, "morph128")
	s := mustNew(t, cfg)
	for i := 0; i < 128; i++ {
		if err := s.Write(uint64(i)*LineBytes, fill(uint64(i), 9)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		got, err := restored.Read(uint64(i) * LineBytes)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fill(uint64(i), 9)) {
			t.Fatalf("line %d: content mismatch after reload", i)
		}
	}
	// Wrong layout must be rejected up front.
	bad := cfg
	bad.Shards = 2
	if _, err := Load(bad, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("load with wrong shard count accepted")
	}
}

// TestLoadLayoutMismatchIsTyped is the regression test for shard count /
// capacity disagreement between a Save stream and the Load config: the
// stream must be rejected with a *MismatchError naming the field, never
// loaded with lines dealt to the wrong shards.
func TestLoadLayoutMismatchIsTyped(t *testing.T) {
	cfg := testConfig(t, 4, 1<<14, "morph128")
	s := mustNew(t, cfg)
	for i := 0; i < 32; i++ {
		if err := s.Write(uint64(i)*LineBytes, fill(uint64(i), 3)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(*Config)
		field  string
		stream uint64
		config uint64
	}{
		{"shards", func(c *Config) { c.Shards = 2 }, "shards", 4, 2},
		{"capacity", func(c *Config) { c.Mem.MemoryBytes = 1 << 13 }, "capacity", 1 << 14, 1 << 13},
	}
	for _, tc := range cases {
		bad := cfg
		tc.mutate(&bad)
		_, err := Load(bad, bytes.NewReader(buf.Bytes()))
		var me *MismatchError
		if !errors.As(err, &me) {
			t.Fatalf("%s: Load returned %v, want *MismatchError", tc.name, err)
		}
		if me.Field != tc.field || me.Stream != tc.stream || me.Config != tc.config {
			t.Fatalf("%s: mismatch = %+v, want field %q stream %d config %d", tc.name, me, tc.field, tc.stream, tc.config)
		}
	}

	// A tampered version field is typed the same way.
	raw := buf.Bytes()
	bad := append([]byte{}, raw...)
	binary.LittleEndian.PutUint64(bad[len(saveMagic):], 99)
	_, err := Load(cfg, bytes.NewReader(bad))
	var me *MismatchError
	if !errors.As(err, &me) || me.Field != "version" {
		t.Fatalf("tampered version: Load returned %v, want *MismatchError{Field: version}", err)
	}
}

// TestConcurrentClients drives every shard from parallel goroutines; under
// -race this is the core claim that independent lines proceed in parallel
// safely.
func TestConcurrentClients(t *testing.T) {
	const n = 4
	s := mustNew(t, testConfig(t, n, 1<<16, "morph128"))
	var wg sync.WaitGroup
	const clients = 8
	const opsPerClient = 200
	lines := s.MemoryBytes() / LineBytes
	chunk := lines / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := uint64(c) * chunk * LineBytes
			for i := 0; i < opsPerClient; i++ {
				addr := base + uint64(i%int(chunk))*LineBytes
				if err := s.Write(addr, fill(addr, uint64(i))); err != nil {
					t.Errorf("client %d write: %v", c, err)
					return
				}
				got, err := s.Read(addr)
				if err != nil {
					t.Errorf("client %d read: %v", c, err)
					return
				}
				if !bytes.Equal(got, fill(addr, uint64(i))) {
					t.Errorf("client %d: content mismatch at %#x", c, addr)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	agg := s.Stats()
	if agg.Writes != clients*opsPerClient {
		t.Fatalf("aggregate writes = %d, want %d", agg.Writes, clients*opsPerClient)
	}
}

func TestOrganizationNames(t *testing.T) {
	for _, name := range []string{"sc64", "sc128", "vault", "morph128", "morph128-zcc"} {
		enc, tree, err := Organization(name)
		if err != nil {
			t.Fatal(err)
		}
		if enc.Arity == 0 || len(tree) == 0 {
			t.Fatalf("%s: empty specs", name)
		}
	}
	if _, _, err := Organization("nope"); err == nil {
		t.Fatal("unknown organization accepted")
	}
}
