package shard

import (
	"bytes"
	"testing"

	"github.com/securemem/morphtree/internal/obs"
)

// TestInstrumentedShards wires a registry and tracer through Config and
// checks: all shards share the latency histograms, trace events carry
// distinct shard tags, and the RegisterMetrics collector exposes totals,
// the per-level overflow breakdown, and per-shard counts.
func TestInstrumentedShards(t *testing.T) {
	cfg := testConfig(t, 4, 1<<16, "morph128")
	cfg.Obs = obs.NewRegistry()
	cfg.Tracer = obs.NewTracer(4096)
	s := mustNew(t, cfg)
	s.RegisterMetrics(cfg.Obs)

	const writes = 256
	for i := 0; i < writes; i++ {
		addr := uint64(i) * LineBytes
		if err := s.Write(addr, fill(addr, 1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		if _, err := s.Read(uint64(i) * LineBytes); err != nil {
			t.Fatal(err)
		}
	}

	snap := cfg.Obs.Snapshot()
	if got := snap.Histograms["secmem.write.latency"].Count; got != writes {
		t.Fatalf("write latency samples = %d, want %d (all shards share one histogram)", got, writes)
	}
	if got := snap.Histograms["secmem.read.latency"].Count; got != 64 {
		t.Fatalf("read latency samples = %d, want 64", got)
	}
	if snap.Counters["secmem.writes"] != writes {
		t.Fatalf("collector secmem.writes = %d, want %d", snap.Counters["secmem.writes"], writes)
	}
	// Round-robin interleaving spreads 256 lines evenly over 4 shards.
	for i := 0; i < 4; i++ {
		name := "shard." + string(rune('0'+i)) + ".writes"
		if snap.Counters[name] != writes/4 {
			t.Fatalf("%s = %d, want %d", name, snap.Counters[name], writes/4)
		}
	}
	if _, ok := snap.Counters["secmem.l0.full_resets"]; !ok {
		t.Fatalf("per-level breakdown missing: %v", snap.CounterNames())
	}
}

// TestLoadPreservesInstrumentation checks a Load-reconstructed sharded
// memory records into the config's instruments like a fresh one.
func TestLoadPreservesInstrumentation(t *testing.T) {
	cfg := testConfig(t, 2, 1<<14, "sc64")
	s := mustNew(t, cfg)
	if err := s.Write(0, fill(0, 1)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}

	cfg.Obs = obs.NewRegistry()
	cfg.Tracer = obs.NewTracer(64)
	loaded, err := Load(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Read(0); err != nil {
		t.Fatal(err)
	}
	snap := cfg.Obs.Snapshot()
	if snap.Histograms["secmem.read.latency"].Count == 0 {
		t.Fatal("loaded engines not instrumented")
	}
}
