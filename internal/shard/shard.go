// Package shard is an N-way sharded front over secmem.Memory: line
// addresses interleave round-robin across N independent engines, each with
// its own integrity tree, untrusted store, and key derived from the master
// key, so operations on different shards proceed in parallel instead of
// serializing on one engine mutex.
//
// The sharding is security-preserving: every shard is a complete secure
// memory (counters, MACs, tree, on-chip root), so tampering with one
// shard's store fails closed inside that shard without weakening — or
// being maskable by — any other shard. Per-shard keys mean a pad or MAC
// collision in one shard tells an adversary nothing about the others.
package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/securemem/morphtree/internal/counters"
	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/proof"
	"github.com/securemem/morphtree/internal/secmem"
)

// LineBytes mirrors the engine's cacheline granularity.
const LineBytes = secmem.LineBytes

// Config describes a sharded secure memory.
type Config struct {
	// Shards is the number of independent engines (>= 1).
	Shards int
	// Mem is the template for each engine. MemoryBytes is the TOTAL
	// protected capacity and must divide evenly into Shards engines of
	// whole cachelines; Key is the master key each shard's sub-key is
	// derived from.
	Mem secmem.Config
	// Obs, when non-nil, instruments every engine: all shards record into
	// shared secmem.write.latency / secmem.read.latency / secmem.lock_wait
	// histograms (histograms merge across recorders, so one stream covers
	// the fleet while trace events stay shard-tagged).
	Obs *obs.Registry
	// Tracer, when non-nil, receives each engine's tree-walk, overflow,
	// rebase and format-switch events tagged with its shard index.
	Tracer *obs.Tracer
}

// Sharded interleaves line addresses across independent secmem engines.
// All fields are immutable after New (tenants is populated once by
// RegisterTenants before serving starts); concurrency control lives inside
// each engine, so methods are safe for concurrent use.
type Sharded struct {
	cfg    Config
	shards []*secmem.Memory
	// tenants maps tenant id -> one key domain per shard (parallel to
	// shards). Populated by RegisterTenants before the Sharded is shared
	// between goroutines; read-only afterwards, so no lock is needed.
	tenants map[string][]*secmem.Domain
}

// New constructs a sharded secure memory. Each shard serves
// MemoryBytes/Shards of the address space and is keyed with
// HMAC-SHA256(master, "morphtree/shard/<i>") truncated to the master key's
// length, so shards never share counter-mode pads or MAC chains.
func New(cfg Config) (*Sharded, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d must be >= 1", cfg.Shards)
	}
	stride := uint64(cfg.Shards) * LineBytes
	if cfg.Mem.MemoryBytes == 0 || cfg.Mem.MemoryBytes%stride != 0 {
		return nil, fmt.Errorf("shard: capacity %d is not a positive multiple of %d shards x %d-byte lines", cfg.Mem.MemoryBytes, cfg.Shards, LineBytes)
	}
	s := &Sharded{cfg: cfg, shards: make([]*secmem.Memory, cfg.Shards)}
	for i := range s.shards {
		sub := cfg.Mem
		sub.MemoryBytes = cfg.Mem.MemoryBytes / uint64(cfg.Shards)
		key, err := deriveKey(cfg.Mem.Key, i)
		if err != nil {
			return nil, err
		}
		sub.Key = key
		m, err := secmem.New(sub)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		cfg.instrument(m, i)
		s.shards[i] = m
	}
	return s, nil
}

// instrument wires engine i into the shared obs instruments, if any.
func (c Config) instrument(m *secmem.Memory, i int) {
	if c.Obs == nil && c.Tracer == nil {
		return
	}
	m.Instrument(secmem.Instrumentation{
		WriteLatency: c.Obs.Histogram("secmem.write.latency"),
		ReadLatency:  c.Obs.Histogram("secmem.read.latency"),
		LockWait:     c.Obs.Histogram("secmem.lock_wait"),
		Tracer:       c.Tracer,
		Shard:        int32(i),
	})
}

// deriveKey derives shard i's sub-key from the master key, preserving the
// master's AES key length. The derivation itself lives in internal/proof
// (the single shared definition) so client-side verifiers reproduce it
// without importing the serving stack.
//
//morph:secret
func deriveKey(master []byte, i int) ([]byte, error) {
	key, err := proof.DeriveShardKey(master, i)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	return key, nil
}

// Locate maps a line-aligned global address to (shard, local address).
// Interleaving is round-robin at line granularity: global line d lives in
// shard d % N at local line d / N, so sequential traffic spreads evenly.
// The durability layer uses it to route journal records to per-shard WALs.
func (s *Sharded) Locate(addr uint64) (int, uint64, error) {
	return s.locate(addr)
}

func (s *Sharded) locate(addr uint64) (int, uint64, error) {
	if addr%LineBytes != 0 {
		return 0, 0, fmt.Errorf("shard: address %#x is not line-aligned", addr)
	}
	if addr >= s.cfg.Mem.MemoryBytes {
		return 0, 0, fmt.Errorf("shard: address %#x beyond capacity %#x", addr, s.cfg.Mem.MemoryBytes)
	}
	d := addr / LineBytes
	n := uint64(s.cfg.Shards)
	return int(d % n), (d / n) * LineBytes, nil
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return s.cfg.Shards }

// MemoryBytes returns the total protected capacity.
func (s *Sharded) MemoryBytes() uint64 { return s.cfg.Mem.MemoryBytes }

// ShardOf returns which shard serves a line-aligned address.
func (s *Sharded) ShardOf(addr uint64) (int, error) {
	idx, _, err := s.locate(addr)
	return idx, err
}

// Shard exposes shard i's engine — primarily its untrusted Store, the
// adversary interface attack tests tamper through.
func (s *Sharded) Shard(i int) *secmem.Memory { return s.shards[i] }

// Read verifies and decrypts the line at a line-aligned global address.
func (s *Sharded) Read(addr uint64) ([]byte, error) {
	idx, local, err := s.locate(addr)
	if err != nil {
		return nil, err
	}
	return s.shards[idx].Read(local)
}

// Write encrypts and stores a 64-byte line at a line-aligned global address.
func (s *Sharded) Write(addr uint64, line []byte) error {
	idx, local, err := s.locate(addr)
	if err != nil {
		return err
	}
	return s.shards[idx].Write(local, line)
}

// RegisterTenants derives a key domain for every (tenant, shard) pair, so
// each tenant's data lines are sealed under keys layered over the shard
// sub-keys (HMAC(shardKey, "morphtree/tenant/<id>")). It must be called
// once, before the Sharded is shared between goroutines — the domain map
// is read locklessly afterwards, preserving the immutable-after-New
// contract. Calling it again replaces the previous registration.
func (s *Sharded) RegisterTenants(ids []string) error {
	tenants := make(map[string][]*secmem.Domain, len(ids))
	for _, id := range ids {
		if _, dup := tenants[id]; dup {
			return fmt.Errorf("shard: duplicate tenant id %q", id)
		}
		doms := make([]*secmem.Domain, len(s.shards))
		for i, m := range s.shards {
			dom, err := m.NewDomain(id)
			if err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
			doms[i] = dom
		}
		tenants[id] = doms
	}
	s.tenants = tenants
	return nil
}

// Tenants returns the registered tenant ids (nil when single-tenant).
func (s *Sharded) Tenants() []string {
	ids := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	return ids
}

// tenantDomain resolves tenant id's key domain on shard idx.
func (s *Sharded) tenantDomain(id string, idx int) (*secmem.Domain, error) {
	doms, ok := s.tenants[id]
	if !ok {
		return nil, fmt.Errorf("shard: unknown tenant %q", id)
	}
	return doms[idx], nil
}

// TenantRead is Read routed through tenant id's key domain. A line last
// written by a different tenant (or via the default-domain Write) fails
// closed with a *secmem.IntegrityError — cross-tenant isolation is
// enforced by key separation, not access-control bookkeeping.
func (s *Sharded) TenantRead(id string, addr uint64) ([]byte, error) {
	idx, local, err := s.locate(addr)
	if err != nil {
		return nil, err
	}
	dom, err := s.tenantDomain(id, idx)
	if err != nil {
		return nil, err
	}
	return s.shards[idx].ReadDomain(dom, local)
}

// TenantWrite is Write routed through tenant id's key domain.
func (s *Sharded) TenantWrite(id string, addr uint64, line []byte) error {
	idx, local, err := s.locate(addr)
	if err != nil {
		return err
	}
	dom, err := s.tenantDomain(id, idx)
	if err != nil {
		return err
	}
	return s.shards[idx].WriteDomain(dom, local, line)
}

// Stats returns the aggregate of every shard's engine stats (sums of the
// paper's event categories: increments, overflows, rebases, re-encryptions,
// verified fetches). Each per-shard snapshot is a deep copy taken under
// that shard's lock, so the merge never races the engines.
func (s *Sharded) Stats() secmem.Stats {
	var agg secmem.Stats
	for _, m := range s.shards {
		agg.Merge(m.Stats())
	}
	return agg
}

// ShardStats returns each shard's individual stats snapshot, for spotting
// load imbalance.
func (s *Sharded) ShardStats() []secmem.Stats {
	out := make([]secmem.Stats, len(s.shards))
	for i, m := range s.shards {
		out[i] = m.Stats()
	}
	return out
}

// RegisterMetrics registers a pull-time collector exposing engine stats as
// counters: fleet-wide totals (secmem.*), the per-level overflow breakdown
// (secmem.l<level>.*, the paper's Fig. 7 categories), and per-shard write
// counts (shard.<i>.writes) for spotting load imbalance. One ShardStats
// pass per scrape; nil registries are a no-op.
func (s *Sharded) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCollector(func(emit func(string, uint64)) {
		per := s.ShardStats()
		var agg secmem.Stats
		for i := range per {
			agg.Merge(per[i])
			emit(fmt.Sprintf("shard.%d.writes", i), per[i].Writes)
			emit(fmt.Sprintf("shard.%d.reads", i), per[i].Reads)
		}
		emit("secmem.reads", agg.Reads)
		emit("secmem.writes", agg.Writes)
		emit("secmem.reencryptions", agg.Reencryptions)
		emit("secmem.verified_fetches", agg.VerifiedFetches)
		var overflows, rebases, setResets, switches uint64
		for _, row := range agg.OverflowsByLevel() {
			prefix := fmt.Sprintf("secmem.l%d.", row.Level)
			emit(prefix+"full_resets", row.FullResets)
			emit(prefix+"set_resets", row.SetResets)
			emit(prefix+"rebases", row.Rebases)
			emit(prefix+"format_switches", row.FormatSwitches)
			overflows += row.FullResets + row.SetResets
			rebases += row.Rebases
			setResets += row.SetResets
			switches += row.FormatSwitches
		}
		emit("secmem.overflows", overflows)
		emit("secmem.set_resets", setResets)
		emit("secmem.rebases", rebases)
		emit("secmem.format_switches", switches)
		for id, ops := range agg.Tenants {
			emit(fmt.Sprintf("tenant.%s.reads", id), ops.Reads)
			emit(fmt.Sprintf("tenant.%s.writes", id), ops.Writes)
		}
	})
}

// VerifyAll re-verifies every written line in every shard from a cold
// metadata cache, returning the first integrity error found.
func (s *Sharded) VerifyAll() error {
	for i, m := range s.shards {
		if err := m.VerifyAll(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Prove builds the verification witness for a read at a global address:
// the owning shard's ciphertext, MAC, and counter-line chain up to its
// root, plus every shard's current root digest (so the verifier can bind
// the witness to the combined root the transparency log publishes). The
// Epoch and Attestation fields are left for the serving layer to fill —
// the engine has no signing authority.
func (s *Sharded) Prove(addr uint64) (*proof.Proof, error) {
	idx, local, err := s.locate(addr)
	if err != nil {
		return nil, err
	}
	line, lineMAC, chain, root, err := s.shards[idx].Prove(local)
	if err != nil {
		return nil, err
	}
	p := &proof.Proof{
		Addr:       addr,
		Shards:     uint32(s.cfg.Shards),
		Shard:      uint32(idx),
		Line:       line,
		LineMAC:    lineMAC,
		Chain:      chain,
		Root:       root,
		ShardRoots: make([]proof.Digest, s.cfg.Shards),
	}
	for j := range s.shards {
		if j == idx {
			p.ShardRoots[j] = proof.RootDigest(j, root)
			continue
		}
		p.ShardRoots[j] = proof.RootDigest(j, s.shards[j].RootEncoding())
	}
	return p, nil
}

// RootDigests returns every shard's current root digest. CombineRoots
// over the result is the combined root the transparency log records at a
// checkpoint epoch.
func (s *Sharded) RootDigests() []proof.Digest {
	out := make([]proof.Digest, len(s.shards))
	for i, m := range s.shards {
		out[i] = proof.RootDigest(i, m.RootEncoding())
	}
	return out
}

// FlipDataBit flips one stored ciphertext bit of the line at a global
// address (adversary interface, used by the wire-level TAMPER op). It
// reports whether the line existed.
func (s *Sharded) FlipDataBit(addr uint64, byteOff int, bit uint) bool {
	idx, local, err := s.locate(addr)
	if err != nil {
		return false
	}
	return s.shards[idx].Store().FlipBit(local/LineBytes, byteOff, bit)
}

const (
	saveMagic   = "MTSH"
	saveVersion = 1
)

// MismatchError reports a Save stream whose embedded layout disagrees with
// the Config passed to Load. Loading such a stream anyway would deal lines
// to the wrong shards (every address maps through d % Shards), so the
// mismatch is rejected with this typed error before any state is built;
// callers distinguish operator misconfiguration from stream corruption.
type MismatchError struct {
	// Field names the disagreeing layout parameter: "version", "shards",
	// or "capacity".
	Field string
	// Stream is the value embedded in the Save stream.
	Stream uint64
	// Config is the value the caller's Config describes.
	Config uint64
}

// Error implements error.
func (e *MismatchError) Error() string {
	return fmt.Sprintf("shard: load: stream %s %d does not match config %s %d", e.Field, e.Stream, e.Field, e.Config)
}

// Save serializes every shard's state (via secmem's persistence format,
// each blob length-prefixed so streams stay delimited) plus the shard
// layout, for the wire SNAPSHOT op.
func (s *Sharded) Save(w io.Writer) error {
	if _, err := io.WriteString(w, saveMagic); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], saveVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(s.cfg.Shards))
	binary.LittleEndian.PutUint64(hdr[16:], s.cfg.Mem.MemoryBytes)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	var buf bytes.Buffer
	for i, m := range s.shards {
		buf.Reset()
		if err := m.Save(&buf); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(buf.Len()))
		if _, err := w.Write(n[:]); err != nil {
			return fmt.Errorf("shard: save: %w", err)
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return fmt.Errorf("shard: save: %w", err)
		}
	}
	return nil
}

// Load reconstructs a sharded memory from a Save stream. cfg must describe
// the same layout (shard count, capacity, counter organization, master key)
// the state was saved under.
func Load(cfg Config, r io.Reader) (*Sharded, error) {
	magic := make([]byte, len(saveMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != saveMagic {
		return nil, fmt.Errorf("shard: load: bad magic")
	}
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("shard: load: %w", err)
	}
	if v := binary.LittleEndian.Uint64(hdr[0:]); v != saveVersion {
		return nil, &MismatchError{Field: "version", Stream: v, Config: saveVersion}
	}
	if n := binary.LittleEndian.Uint64(hdr[8:]); n != uint64(cfg.Shards) {
		return nil, &MismatchError{Field: "shards", Stream: n, Config: uint64(cfg.Shards)}
	}
	if mb := binary.LittleEndian.Uint64(hdr[16:]); mb != cfg.Mem.MemoryBytes {
		return nil, &MismatchError{Field: "capacity", Stream: mb, Config: cfg.Mem.MemoryBytes}
	}
	s := &Sharded{cfg: cfg, shards: make([]*secmem.Memory, cfg.Shards)}
	for i := range s.shards {
		var n [8]byte
		if _, err := io.ReadFull(r, n[:]); err != nil {
			return nil, fmt.Errorf("shard: load: %w", err)
		}
		blob := make([]byte, binary.LittleEndian.Uint64(n[:]))
		if _, err := io.ReadFull(r, blob); err != nil {
			return nil, fmt.Errorf("shard %d: load: %w", i, err)
		}
		sub := cfg.Mem
		sub.MemoryBytes = cfg.Mem.MemoryBytes / uint64(cfg.Shards)
		key, err := deriveKey(cfg.Mem.Key, i)
		if err != nil {
			return nil, err
		}
		sub.Key = key
		m, err := secmem.Load(sub, bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		cfg.instrument(m, i)
		s.shards[i] = m
	}
	return s, nil
}

// Organization maps a counter-organization name to its encryption and tree
// specs, covering the designs the paper evaluates. Names: sc64, sc128,
// vault, morph128, morph128-zcc.
func Organization(name string) (enc counters.Spec, tree []counters.Spec, err error) {
	switch name {
	case "sc64":
		return counters.SplitSpec(64), []counters.Spec{counters.SplitSpec(64)}, nil
	case "sc128":
		return counters.SplitSpec(128), []counters.Spec{counters.SplitSpec(128)}, nil
	case "vault":
		return counters.SplitSpec(64), []counters.Spec{counters.SplitSpec(32), counters.SplitSpec(16)}, nil
	case "morph128":
		return counters.MorphSpec(true), []counters.Spec{counters.MorphSpec(true)}, nil
	case "morph128-zcc":
		return counters.MorphSpec(false), []counters.Spec{counters.MorphSpec(false)}, nil
	}
	return counters.Spec{}, nil, fmt.Errorf("shard: unknown organization %q (want sc64, sc128, vault, morph128, morph128-zcc)", name)
}
