package morphtree_test

// Cross-layer integration tests: the functional engine (internal/secmem)
// and the performance simulator (internal/sim) share the counter
// implementations but drive them through different plumbing. These tests
// check that the two layers agree where their models overlap, and that the
// public API composes end to end.

import (
	"bytes"
	"testing"

	"github.com/securemem/morphtree"
	"github.com/securemem/morphtree/internal/counters"
	"github.com/securemem/morphtree/internal/tree"
)

// TestFunctionalAndAnalyticOverflowAgreement drives the exact adversarial
// write sequence of Section V through the functional engine and checks that
// overflows arrive at the analytically predicted rate (one per 67 writes).
func TestFunctionalAndAnalyticOverflowAgreement(t *testing.T) {
	mem, err := morphtree.New(morphtree.Config{
		MemoryBytes: 1 << 20,
		Enc:         morphtree.MorphableCounters(true),
		Tree:        []morphtree.CounterSpec{morphtree.MorphableCounters(true)},
		Key:         []byte("0123456789abcdef"),
	})
	if err != nil {
		t.Fatal(err)
	}
	line := make([]byte, 64)
	rounds := 10
	for r := 0; r < rounds; r++ {
		base := uint64(r) * 64 * 128 // fresh 128-counter region per round
		for i := 0; i < 52; i++ {
			if err := mem.Write(base+uint64(i)*64, line); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 15; i++ {
			if err := mem.Write(base, line); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := mem.Stats()
	if got, want := st.Increments[0], uint64(rounds*67); got != want {
		t.Fatalf("writes = %d, want %d", got, want)
	}
	if st.Overflows[0] != uint64(rounds) {
		t.Fatalf("functional engine saw %d overflows over %d adversarial rounds (analytic: one per %d writes)",
			st.Overflows[0], rounds, counters.PathologicalZCCWrites())
	}
}

// TestFunctionalStreamingRebasing drives a uniform streaming write pattern
// through the functional engine and checks the rebasing behavior the
// analytic model promises: no overflow before MCRWritesToOverflow writes.
func TestFunctionalStreamingRebasing(t *testing.T) {
	mem, err := morphtree.New(morphtree.Config{
		MemoryBytes: 1 << 20,
		Enc:         morphtree.MorphableCounters(true),
		Tree:        []morphtree.CounterSpec{morphtree.MorphableCounters(true)},
		Key:         []byte("0123456789abcdef"),
	})
	if err != nil {
		t.Fatal(err)
	}
	line := make([]byte, 64)
	tolerance := counters.MCRWritesToOverflow()
	// Round-robin writes over one 128-line region, staying well under
	// the analytic tolerance.
	writes := uint64(0)
	for writes < tolerance/2 {
		for i := uint64(0); i < 128 && writes < tolerance/2; i++ {
			if err := mem.Write(i*64, line); err != nil {
				t.Fatal(err)
			}
			writes++
		}
	}
	st := mem.Stats()
	if st.Overflows[0] != 0 {
		t.Fatalf("streaming writes overflowed %d times before the analytic tolerance %d",
			st.Overflows[0], tolerance)
	}
	if st.Rebases[0] == 0 {
		t.Fatal("no rebases under uniform streaming writes")
	}
}

// TestGeometryMatchesFunctionalEngine checks that the functional engine's
// tree has exactly the shape the geometry module predicts.
func TestGeometryMatchesFunctionalEngine(t *testing.T) {
	for _, c := range []struct {
		enc  morphtree.CounterSpec
		tree []morphtree.CounterSpec
	}{
		{morphtree.SplitCounters(64), []morphtree.CounterSpec{morphtree.SplitCounters(64)}},
		{morphtree.SplitCounters(64), []morphtree.CounterSpec{morphtree.SplitCounters(32), morphtree.SplitCounters(16)}},
		{morphtree.MorphableCounters(true), []morphtree.CounterSpec{morphtree.MorphableCounters(true)}},
	} {
		mem, err := morphtree.New(morphtree.Config{
			MemoryBytes: 64 << 20, Enc: c.enc, Tree: c.tree,
			Key: []byte("0123456789abcdef"),
		})
		if err != nil {
			t.Fatal(err)
		}
		arities := make([]int, len(c.tree))
		for i, s := range c.tree {
			arities[i] = s.Arity
		}
		g, err := tree.New(64<<20, c.enc.Arity, arities)
		if err != nil {
			t.Fatal(err)
		}
		if mem.Geometry().NumLevels() != g.NumLevels() {
			t.Fatalf("%s: engine tree has %d levels, geometry says %d",
				c.enc.Name, mem.Geometry().NumLevels(), g.NumLevels())
		}
		if mem.Store().StoredLevels() != g.RootLevel() {
			t.Fatalf("%s: store holds %d levels, want %d (root on-chip)",
				c.enc.Name, mem.Store().StoredLevels(), g.RootLevel())
		}
	}
}

// TestSaveLoadThroughPublicAPI exercises persistence end to end through the
// facade, including post-load attack detection.
func TestSaveLoadThroughPublicAPI(t *testing.T) {
	cfg := morphtree.Config{
		MemoryBytes: 1 << 20,
		Enc:         morphtree.MorphableCounters(true),
		Tree:        []morphtree.CounterSpec{morphtree.MorphableCounters(true)},
		Key:         []byte("0123456789abcdef"),
	}
	mem, err := morphtree.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("persist me securely")
	if err := mem.WriteAt(secret, 128); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mem.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := morphtree.Load(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(secret))
	if err := loaded.ReadAt(got, 128); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("round trip through Save/Load failed")
	}
	loaded.Store().FlipBit(128/64, 1, 1)
	if _, err := loaded.Read(128); err == nil {
		t.Fatal("post-load tampering undetected")
	}
}

// TestEndToEndEvaluationPipeline runs a miniature version of the paper's
// whole evaluation through the public API: geometry, functional security,
// and simulation must all tell the same story (the MorphTree is smaller,
// no less secure, and at least as fast).
func TestEndToEndEvaluationPipeline(t *testing.T) {
	morphG, err := morphtree.Geometry(16<<30, 128, []int{128})
	if err != nil {
		t.Fatal(err)
	}
	baseG, err := morphtree.Geometry(16<<30, 64, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if morphG.TreeBytes() >= baseG.TreeBytes() {
		t.Fatal("MorphTree is not smaller than the baseline tree")
	}

	// Security: both organizations must catch a replay.
	for _, spec := range []morphtree.CounterSpec{morphtree.SplitCounters(64), morphtree.MorphableCounters(true)} {
		mem, err := morphtree.New(morphtree.Config{
			MemoryBytes: 1 << 20, Enc: spec,
			Tree: []morphtree.CounterSpec{spec},
			Key:  []byte("0123456789abcdef"),
		})
		if err != nil {
			t.Fatal(err)
		}
		l := make([]byte, 64)
		mem.Write(0, l)
		old := mem.Store().Snapshot(0, mem.Path(0))
		l[0] = 1
		mem.Write(0, l)
		mem.Store().Replay(old)
		mem.FlushMetadataCache()
		if _, err := mem.Read(0); err == nil {
			t.Fatalf("%s: replay undetected", spec.Name)
		}
	}

	// Performance: on a metadata-bound workload, Morph >= SC-64.
	bench, err := morphtree.BenchmarkByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	w := morphtree.RateWorkload(bench, 4)
	opt := morphtree.DefaultSimOptions()
	opt.WarmupAccesses = 40_000
	opt.MeasureAccesses = 40_000
	morphCfg, _ := morphtree.SimPreset("morph")
	baseCfg, _ := morphtree.SimPreset("sc64")
	rm, err := morphtree.Simulate(morphCfg, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := morphtree.Simulate(baseCfg, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rm.IPC < rb.IPC {
		t.Fatalf("MorphCtr IPC %v < SC-64 %v on a metadata-bound workload", rm.IPC, rb.IPC)
	}
}
