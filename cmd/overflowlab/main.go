// Command overflowlab explores counter-overflow behavior analytically:
// the writes-to-overflow curves of Figures 6 and 10, the MCR uniform-write
// tolerance, and the adversarial worst case of Section V.
//
// Usage:
//
//	overflowlab -curve split   # Figure 6 (SC-64 vs SC-128)
//	overflowlab -curve zcc     # Figure 10 (MorphCtr ZCC vs SC-64)
//	overflowlab -adversary     # Section V's pathological pattern
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"github.com/securemem/morphtree/internal/counters"
)

func main() {
	curve := flag.String("curve", "split", "curve to print: split (Figure 6) or zcc (Figure 10)")
	adversary := flag.Bool("adversary", false, "print Section V's denial-of-service analysis")
	points := flag.Int("points", 16, "number of curve sample points")
	flag.Parse()

	if *adversary {
		fmt.Println("Section V: resilience to denial of service")
		fmt.Printf("  uniform round-robin writes before overflow (MCR): %d (paper: 500+)\n",
			counters.MCRWritesToOverflow())
		fmt.Printf("  pathological pattern (52 single writes + hammer): %d writes (paper: 67)\n",
			counters.PathologicalZCCWrites())
		fmt.Printf("  baseline SC-64 worst case:                        %d writes\n",
			counters.SplitWritesToOverflow(64, 1))
		return
	}

	switch *curve {
	case "split":
		fmt.Println("Figure 6: writes/overflow vs fraction of counter-cacheline used")
		fmt.Printf("  %-10s %14s %14s\n", "fraction", "SC-64", "SC-128")
		for _, f := range fractions(*points) {
			u64 := clamp(int(math.Round(f*64)), 1, 64)
			u128 := clamp(int(math.Round(f*128)), 1, 128)
			fmt.Printf("  %-10.3f %14d %14d\n", f,
				counters.SplitWritesToOverflow(64, u64),
				counters.SplitWritesToOverflow(128, u128))
		}
	case "zcc":
		fmt.Println("Figure 10: writes/overflow, SC-64 vs MorphCtr-128 (ZCC)")
		fmt.Printf("  %-10s %14s %14s\n", "fraction", "SC-64", "MorphCtr(ZCC)")
		for _, f := range fractions(*points) {
			u64 := clamp(int(math.Round(f*64)), 1, 64)
			u128 := clamp(int(math.Round(f*128)), 1, 128)
			fmt.Printf("  %-10.3f %14d %14d\n", f,
				counters.SplitWritesToOverflow(64, u64),
				counters.ZCCWritesToOverflow(u128))
		}
	default:
		fmt.Fprintf(os.Stderr, "overflowlab: unknown curve %q\n", *curve)
		os.Exit(2)
	}
}

func fractions(n int) []float64 {
	out := make([]float64, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, float64(i)/float64(n))
	}
	return out
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
