// Cluster chaos mode (-cluster): three replication nodes on loopback,
// whole-node kills mid-load, and the same two invariants as the fault
// matrix — zero lost acknowledged writes and zero spurious integrity
// errors — plus failover latency and replication lag measurements.
//
// The harness doubles as the failover control plane (it is the one doing
// the killing, so "detecting" the death is not what is under test): after
// a primary kill it waits out the lease, surveys the survivors' routes,
// promotes the most caught-up one at the next fencing epoch, and points
// the rest at it. What IS under test is everything the cluster promises
// around that dance: writes acked before the kill survive it, clients
// fail over via dial errors and MOVED redirects, a lagging candidate
// catches up from a donor before leading, and none of the churn ever
// surfaces as an integrity alarm.
//
// The migrate_kill_donor scenario adds live shard migration to the churn:
// with clients hammering one shard, that shard is migrated to a replica
// mid-load, the donor (the primary) is killed after cut-over, and the
// control plane must promote the recipient — its marks on the migrated
// shard are the highest, because after cut-over it is the shard's only
// journal. The same two invariants gate the run: every write acked before,
// during, or after the hand-off survives, and none of it trips integrity.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/securemem/morphtree/internal/cluster"
	"github.com/securemem/morphtree/internal/durable"
	"github.com/securemem/morphtree/internal/fault"
	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/server"
	"github.com/securemem/morphtree/internal/shard"
	"github.com/securemem/morphtree/internal/wire"
)

const (
	clusterShards  = 2
	clusterLease   = 150 * time.Millisecond
	loadDuration   = 700 * time.Millisecond
	killAt         = 150 * time.Millisecond
	probeLine      = uint64(memBytes - lineBytes) // reserved for the prober
	workerLines    = 256                          // per worker, away from the probe line
	clusterClients = 2

	// Migration scenario geometry: the load targets only the migrated
	// shard (shard 1 of 2: odd line indices), because the resilient client
	// re-targets wholly on MOVED — mixed-shard traffic would just measure
	// redirect ping-pong. 2 workers x 128 odd lines = lines 1..511, clear
	// of the prober's line 1023 (also odd, so the prober rides the
	// migration too).
	migrateShard       = 1
	migrateWorkerLines = 128
	migrateAt          = 100 * time.Millisecond
)

// clusterScenario is one cell of the node-kill matrix; each runs `seeds`
// times with distinct seeds so the failover percentiles mean something.
type clusterScenario struct {
	name        string
	seeds       int
	killPrimary bool // false = kill a replica instead
	latency     bool // route client traffic to the primary through a latency proxy
	migrate     bool // migrate a shard to a replica mid-load before the kill
}

func clusterMatrix(smoke bool) []clusterScenario {
	if smoke {
		return []clusterScenario{
			{name: "kill_replica", seeds: 1},
			{name: "kill_primary", seeds: 2, killPrimary: true},
			{name: "migrate_kill_donor", seeds: 1, killPrimary: true, migrate: true},
		}
	}
	return []clusterScenario{
		{name: "kill_replica", seeds: 2},
		{name: "kill_primary", seeds: 4, killPrimary: true},
		{name: "kill_primary_latency", seeds: 2, killPrimary: true, latency: true},
		{name: "migrate_kill_donor", seeds: 2, killPrimary: true, migrate: true},
	}
}

// clusterRunResult is one row of BENCH_cluster.json.
type clusterRunResult struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`

	Ops               uint64 `json:"ops"`
	AckedWrites       uint64 `json:"acked_writes"`
	LostAckedWrites   uint64 `json:"lost_acked_writes"`
	SpuriousIntegrity uint64 `json:"spurious_integrity_errors"`
	FinalOpFailures   uint64 `json:"final_op_failures"`

	Retries    uint64 `json:"retries"`
	Reconnects uint64 `json:"reconnects"`
	Reroutes   uint64 `json:"reroutes"`

	FailoverMS float64 `json:"failover_ms,omitempty"`
	MigrateMS  float64 `json:"migrate_ms,omitempty"`
	VerifyOK   bool    `json:"verify_ok"`
	Pass       bool    `json:"pass"`
	Note       string  `json:"note,omitempty"`
}

type clusterReport struct {
	Seed          int64              `json:"seed"`
	Smoke         bool               `json:"smoke"`
	Runs          []clusterRunResult `json:"runs"`
	FailoverP50MS float64            `json:"failover_p50_ms"`
	FailoverP99MS float64            `json:"failover_p99_ms"`
	ReplLagP50    uint64             `json:"repl_lag_p50_records"`
	ReplLagMax    uint64             `json:"repl_lag_max_records"`
	Pass          bool               `json:"pass"`
}

// runClusterMode is morphchaos -cluster: the node-kill matrix.
func runClusterMode(seed int64, smoke bool, out string) {
	rep := clusterReport{Seed: seed, Smoke: smoke, Pass: true}
	var failovers []float64
	var lags []uint64
	start := time.Now()
	for _, sc := range clusterMatrix(smoke) {
		for i := 0; i < sc.seeds; i++ {
			runSeed := seed + int64(i)*7919
			res, failoverMS, lagSamples, err := runClusterRun(sc, runSeed)
			if err != nil {
				log.Fatalf("morphchaos: %s seed %d: %v", sc.name, runSeed, err)
			}
			rep.Runs = append(rep.Runs, res)
			if !res.Pass {
				rep.Pass = false
			}
			if sc.killPrimary && res.Pass {
				failovers = append(failovers, failoverMS)
			}
			lags = append(lags, lagSamples...)
			status := "ok"
			if !res.Pass {
				status = "FAIL " + res.Note
			}
			fmt.Printf("morphchaos: %-20s seed %-6d %5d ops, %4d acked, %3d retries, %2d reroutes, failover %6.1fms — %s\n",
				sc.name, runSeed, res.Ops, res.AckedWrites, res.Retries, res.Reroutes, res.FailoverMS, status)
		}
	}
	rep.FailoverP50MS = percentileF(failovers, 0.50)
	rep.FailoverP99MS = percentileF(failovers, 0.99)
	rep.ReplLagP50 = percentileU(lags, 0.50)
	rep.ReplLagMax = percentileU(lags, 1.00)

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("morphchaos: %v", err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		log.Fatalf("morphchaos: %v", err)
	}
	verdict := "PASS"
	if !rep.Pass {
		verdict = "FAIL"
	}
	fmt.Printf("morphchaos: cluster %s in %v — failover p50 %.1fms p99 %.1fms, repl lag p50 %d max %d records (%s)\n",
		verdict, time.Since(start).Round(time.Millisecond),
		rep.FailoverP50MS, rep.FailoverP99MS, rep.ReplLagP50, rep.ReplLagMax, out)
	if !rep.Pass {
		os.Exit(1)
	}
}

// chaosNode is one cluster member the harness can kill.
type chaosNode struct {
	addr   string
	node   *cluster.Node
	cancel func()
	done   chan struct{}

	mu    sync.Mutex
	alive bool
}

func (cn *chaosNode) isAlive() bool {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.alive
}

// kill stops serving and closes the node — the whole member is gone.
func (cn *chaosNode) kill() {
	cn.mu.Lock()
	if !cn.alive {
		cn.mu.Unlock()
		return
	}
	cn.alive = false
	cn.mu.Unlock()
	// Halt first: handlers blocked waiting for replica acks must not ride
	// out AckTimeout while the server drain waits for them.
	cn.node.Halt()
	cn.cancel()
	<-cn.done
	_ = cn.node.Close()
}

func startChaosNode(shcfg shard.Config, dir string, mutate func(*cluster.Config)) (*chaosNode, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	cfg := cluster.Config{
		Self:      ln.Addr().String(),
		Lease:     clusterLease,
		PollWait:  20 * time.Millisecond,
		PollRetry: 2 * time.Millisecond,
	}
	mutate(&cfg)
	n, err := cluster.Open(shcfg, durable.Config{Dir: dir, Sync: durable.SyncAlways}, cfg)
	if err != nil {
		_ = ln.Close()
		return nil, err
	}
	srv := server.New(n, server.Config{Cluster: n})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, ln)
	}()
	return &chaosNode{addr: cfg.Self, node: n, cancel: cancel, done: done, alive: true}, nil
}

// runClusterRun executes one seeded kill: stand up a 3-node cluster, load
// it, kill the target mid-load, fail over if the target was the primary,
// then audit every acknowledged write on the final primary.
func runClusterRun(sc clusterScenario, seed int64) (clusterRunResult, float64, []uint64, error) {
	res := clusterRunResult{Name: sc.name, Seed: seed}

	enc, tree, err := shard.Organization("morph128")
	if err != nil {
		return res, 0, nil, err
	}
	shcfg := shard.Config{
		Shards: clusterShards,
		Mem: secmem.Config{
			MemoryBytes: memBytes,
			Enc:         enc,
			Tree:        tree,
			Key:         []byte("0123456789abcdef"),
		},
	}

	var nodes []*chaosNode
	defer func() {
		for _, cn := range nodes {
			cn.kill()
		}
	}()
	dirs := make([]string, 3)
	for i := range dirs {
		d, err := os.MkdirTemp("", "morphchaos-cluster-*")
		if err != nil {
			return res, 0, nil, err
		}
		dirs[i] = d
		defer os.RemoveAll(d)
	}
	p, err := startChaosNode(shcfg, dirs[0], func(c *cluster.Config) {
		c.Primary = true
		c.AckReplicas = 1
	})
	if err != nil {
		return res, 0, nil, err
	}
	nodes = append(nodes, p)
	var replicas []*chaosNode
	for i := 0; i < 2; i++ {
		r, err := startChaosNode(shcfg, dirs[i+1], func(c *cluster.Config) { c.Leader = p.addr })
		if err != nil {
			return res, 0, nil, err
		}
		nodes = append(nodes, r)
		replicas = append(replicas, r)
	}
	for _, cn := range nodes {
		// Static membership for failover catch-up donor pulls.
		var peers []string
		for _, o := range nodes {
			if o != cn {
				peers = append(peers, o.addr)
			}
		}
		cn.node.SetPeers(peers)
	}

	// Client seed addresses; the primary optionally sits behind a latency
	// proxy (MOVED redirects carry real node addresses, so rerouted
	// traffic legitimately bypasses it — the proxy perturbs the seed path).
	seedAddrs := []string{p.addr, replicas[0].addr, replicas[1].addr}
	if sc.latency {
		proxy, stopProxy, err := fault.Start(p.addr, fault.Profile{
			Seed: seed, Latency: time.Millisecond, Jitter: time.Millisecond,
		})
		if err != nil {
			return res, 0, nil, err
		}
		defer stopProxy()
		seedAddrs[0] = proxy.Addr().String()
	}

	// Load: closed-loop workers with the fault-matrix quarantine
	// semantics, plus a no-retry prober measuring write availability.
	stop := make(chan struct{})
	workers := make([]workerResult, clusterClients)
	var wg sync.WaitGroup
	for c := 0; c < clusterClients; c++ {
		base := uint64(c) * workerLines * lineBytes
		lines := uint64(workerLines)
		addrOf := func(i uint64) uint64 { return base + i*lineBytes }
		if sc.migrate {
			off := uint64(c) * migrateWorkerLines
			lines = migrateWorkerLines
			addrOf = func(i uint64) uint64 { return (2*(off+i) + 1) * lineBytes }
		}
		wg.Add(1)
		go func(c int, addrOf func(uint64) uint64, lines uint64) {
			defer wg.Done()
			cl := wire.NewResilient(wire.ResilientConfig{
				Addrs:       seedAddrs,
				Timeout:     500 * time.Millisecond,
				MaxAttempts: 40,
				BaseBackoff: 2 * time.Millisecond,
				MaxBackoff:  25 * time.Millisecond,
				RetryWrites: true,
				Seed:        seed + int64(c),
			})
			defer cl.Close()
			workers[c] = clusterWorker(cl, rand.New(rand.NewSource(seed+int64(c)*7919)),
				addrOf, lines, stop)
		}(c, addrOf, lines)
	}
	probec := make(chan probeResult, 1)
	go func() {
		cl := wire.NewResilient(wire.ResilientConfig{
			Addrs:       seedAddrs,
			Timeout:     100 * time.Millisecond,
			MaxAttempts: 1, // availability probe: no retries, fast failure
			Seed:        seed - 1,
		})
		defer cl.Close()
		probec <- prober(cl, stop)
	}()

	// Replication-lag sampler: max over shards of leader-minus-follower
	// durable marks, from the survivors' route responses.
	var lagMu sync.Mutex
	var lagSamples []uint64
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if s, ok := sampleLag(nodes); ok {
					lagMu.Lock()
					lagSamples = append(lagSamples, s)
					lagMu.Unlock()
				}
			}
		}
	}()

	// For the migration scenario: let load land, then ship the hot shard
	// to the first replica while the writes keep coming. The kill below
	// then takes out the donor, and failover MUST land on the recipient —
	// after cut-over its journal is the only copy of the shard's acked
	// tail, which is exactly what makes its marks the highest.
	recipient := replicas[0]
	if sc.migrate {
		time.Sleep(migrateAt)
		mt := time.Now()
		if err := runLiveMigration(recipient.addr, p.addr, migrateShard); err != nil {
			close(stop)
			wg.Wait()
			<-probec
			<-samplerDone
			return res, 0, nil, fmt.Errorf("live migration: %w", err)
		}
		res.MigrateMS = float64(time.Since(mt).Microseconds()) / 1000
	}

	// The kill, and (for primary kills) the failover control plane.
	target := replicas[1]
	if sc.killPrimary {
		target = p
	}
	time.Sleep(killAt)
	target.kill()
	killT := time.Now() // the node is fully gone from here
	if sc.killPrimary {
		if err := failOver(nodes, 2); err != nil {
			close(stop)
			wg.Wait()
			<-probec
			<-samplerDone
			return res, 0, nil, fmt.Errorf("failover: %w", err)
		}
	}
	time.Sleep(loadDuration - killAt)
	close(stop)
	wg.Wait()
	probe := <-probec
	<-samplerDone

	for c := range workers {
		w := &workers[c]
		res.Ops += w.reads + w.writes + w.finalFailures
		res.AckedWrites += w.writes
		res.SpuriousIntegrity += w.spuriousIntegrity
		res.FinalOpFailures += w.finalFailures
		res.Retries += w.net.Retries
		res.Reconnects += w.net.Reconnects
		res.Reroutes += w.net.Reroutes
	}
	res.Ops += probe.acked + probe.failed
	res.AckedWrites += probe.acked
	res.SpuriousIntegrity += probe.spuriousIntegrity
	res.FinalOpFailures += probe.failed

	// Failover latency: kill to the prober's first acknowledged write.
	var failoverMS float64
	if sc.killPrimary {
		first := probe.firstSuccessAfter(killT)
		if first.IsZero() {
			res.Pass = false
			res.Note = "no successful write after the primary kill"
			return res, 0, nil, nil
		}
		failoverMS = float64(first.Sub(killT).Microseconds()) / 1000
		res.FailoverMS = failoverMS
	}

	// Audit on the final primary over a clean connection.
	final := currentPrimary(nodes)
	if final == nil {
		res.Pass = false
		res.Note = "no primary survived the run"
		return res, 0, nil, nil
	}
	if sc.migrate && final != recipient {
		// Anyone else leading the migrated shard would silently serve its
		// stale pre-cut-over copy.
		res.Pass = false
		res.Note = fmt.Sprintf("failover promoted %s, not the migrated shard's recipient %s", final.addr, recipient.addr)
		return res, 0, nil, nil
	}
	direct := wire.NewResilient(wire.ResilientConfig{Addr: final.addr, Timeout: 10 * time.Second, Seed: seed - 2})
	defer direct.Close()
	for c := range workers {
		w := &workers[c]
		for a := range w.seqs {
			got, err := direct.Read(a)
			if err != nil || !w.acceptable(got, a) {
				res.LostAckedWrites++
			}
		}
	}
	// The probe line keeps being written after failures, so any seq up to
	// the last attempt is a legitimate survivor (zombie writes included).
	if probe.lastSeq > 0 {
		got, err := direct.Read(probeLine)
		if err != nil || !probe.acceptableProbe(got) {
			res.LostAckedWrites++
		}
	}
	res.VerifyOK = direct.Verify() == nil

	res.Pass = res.SpuriousIntegrity == 0 && res.LostAckedWrites == 0 && res.VerifyOK
	if !res.Pass {
		res.Note = fmt.Sprintf("%d spurious integrity, %d lost acked writes, verify_ok=%v",
			res.SpuriousIntegrity, res.LostAckedWrites, res.VerifyOK)
	}
	lagMu.Lock()
	defer lagMu.Unlock()
	return res, failoverMS, lagSamples, nil
}

// runLiveMigration asks recipient to pull shard from donor — the same
// control-plane call an operator rebalancing the cluster would make.
func runLiveMigration(recipient, donor string, shard uint32) error {
	cl, err := wire.Dial(recipient, 5*time.Second)
	if err != nil {
		return err
	}
	defer cl.Close()
	_, err = cl.Migrate(&wire.MigrateRequest{
		Phase: wire.MigrateRun, Epoch: 1, Shard: shard, Donor: donor,
	})
	return err
}

// clusterWorker is the fault-matrix worker loop, time-bounded instead of
// op-counted so the load spans the kill and the recovery. addrOf maps a
// line index in [0, lines) to the worker's address for it.
func clusterWorker(cl *wire.ResilientClient, rng *rand.Rand, addrOf func(uint64) uint64, lines uint64, stop <-chan struct{}) workerResult {
	w := workerResult{
		seqs:  make(map[uint64]uint64, lines),
		maybe: make(map[uint64][]uint64, 4),
	}
	for {
		select {
		case <-stop:
			w.net = cl.Counters()
			return w
		default:
		}
		a := addrOf(uint64(rng.Int63n(int64(lines))))
		if rng.Float64() < 0.5 && len(w.maybe[a]) == 0 {
			seq := w.seqs[a] + 1
			if err := cl.Write(a, fill(a, seq)); err != nil {
				w.record(err)
				w.maybe[a] = append(w.maybe[a], seq)
				continue
			}
			w.seqs[a] = seq
			w.writes++
		} else {
			got, err := cl.Read(a)
			if err != nil {
				w.record(err)
				continue
			}
			w.reads++
			if w.acceptable(got, a) {
				w.verified++
			} else {
				w.mismatches++
			}
		}
	}
}

// probeResult is the availability prober's history on its reserved line.
type probeResult struct {
	lastSeq           uint64
	acked             uint64
	failed            uint64
	spuriousIntegrity uint64
	ackedSeqs         map[uint64]bool
	succAt            []time.Time
}

// prober writes an incrementing sequence to the reserved line as fast as
// failures allow; the gap in succAt around a kill is the failover time.
func prober(cl *wire.ResilientClient, stop <-chan struct{}) probeResult {
	pr := probeResult{ackedSeqs: make(map[uint64]bool)}
	for {
		select {
		case <-stop:
			return pr
		default:
		}
		pr.lastSeq++
		if err := cl.Write(probeLine, fill(probeLine, pr.lastSeq)); err != nil {
			var w workerResult
			w.record(err)
			pr.spuriousIntegrity += w.spuriousIntegrity
			pr.failed += w.finalFailures
			time.Sleep(2 * time.Millisecond)
			continue
		}
		pr.acked++
		pr.ackedSeqs[pr.lastSeq] = true
		pr.succAt = append(pr.succAt, time.Now())
		time.Sleep(time.Millisecond)
	}
}

func (pr *probeResult) firstSuccessAfter(t time.Time) time.Time {
	for _, s := range pr.succAt {
		if s.After(t) {
			return s
		}
	}
	return time.Time{}
}

// acceptableProbe: the line must hold some attempted sequence (acked or
// indeterminate) — or zeros if nothing was ever acked.
func (pr *probeResult) acceptableProbe(got []byte) bool {
	if pr.acked == 0 && bytes.Equal(got, make([]byte, lineBytes)) {
		return true
	}
	for s := uint64(1); s <= pr.lastSeq; s++ {
		if bytes.Equal(got, fill(probeLine, s)) {
			return true
		}
	}
	return false
}

// failOver is the control plane: wait out the lease, survey survivors,
// promote the most caught-up one, and point the rest at it. Promotion is
// retried because the candidate refuses while its leader lease is fresh.
func failOver(nodes []*chaosNode, newEpoch uint64) error {
	time.Sleep(clusterLease + 30*time.Millisecond)
	var survivors []*chaosNode
	var routes []*wire.RouteInfo
	for _, cn := range nodes {
		if cn.isAlive() {
			survivors = append(survivors, cn)
			routes = append(routes, cn.node.Route())
		}
	}
	if len(survivors) == 0 {
		return fmt.Errorf("no survivors")
	}
	min := append([]uint64(nil), routes[0].Marks...)
	for _, ri := range routes[1:] {
		for i, m := range ri.Marks {
			if m > min[i] {
				min[i] = m
			}
		}
	}
	// Prefer a candidate that already covers min; any survivor works — a
	// lagging one catches up from its peers during Promote.
	candidate := survivors[0]
	for i, ri := range routes {
		ok := true
		for j, m := range ri.Marks {
			if m < min[j] {
				ok = false
				break
			}
		}
		if ok {
			candidate = survivors[i]
			break
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		_, err := candidate.node.Promote(newEpoch, min)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("promote %s: %w", candidate.addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, cn := range survivors {
		if cn != candidate {
			if err := cn.node.Follow(newEpoch, candidate.addr); err != nil {
				return fmt.Errorf("follow %s -> %s: %w", cn.addr, candidate.addr, err)
			}
		}
	}
	return nil
}

func currentPrimary(nodes []*chaosNode) *chaosNode {
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for _, cn := range nodes {
			if cn.isAlive() && cn.node.Route().Role == cluster.RolePrimary {
				return cn
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

// sampleLag returns the worst follower lag in records, if a primary is
// currently serving.
func sampleLag(nodes []*chaosNode) (uint64, bool) {
	var leader *wire.RouteInfo
	var followers []*wire.RouteInfo
	for _, cn := range nodes {
		if !cn.isAlive() {
			continue
		}
		ri := cn.node.Route()
		if ri.Role == cluster.RolePrimary {
			leader = ri
		} else {
			followers = append(followers, ri)
		}
	}
	if leader == nil || len(followers) == 0 {
		return 0, false
	}
	var worst uint64
	for _, f := range followers {
		for i, m := range leader.Marks {
			if i < len(f.Marks) && m > f.Marks[i] && m-f.Marks[i] > worst {
				worst = m - f.Marks[i]
			}
		}
	}
	return worst, true
}

func percentileF(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p * float64(len(s)-1))
	return s[i]
}

func percentileU(xs []uint64, p float64) uint64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]uint64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(p * float64(len(s)-1))
	return s[i]
}
