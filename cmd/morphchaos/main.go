// Command morphchaos drives a client–proxy–server stack through a seeded
// fault matrix and asserts the system's two resilience invariants:
//
//  1. No lost acknowledged writes: any write the client saw acknowledged
//     is present in the secure memory afterwards (or was overwritten by a
//     later write of that client — never silently dropped).
//  2. No spurious integrity alarms: network faults — resets, mid-frame
//     cuts, stalls, partial writes, latency — must never surface as
//     *secmem.IntegrityError. Integrity errors mean tampering, and this
//     harness never tampers.
//
// The stack is fully in-process: a sharded secmem engine behind the wire
// server, the internal/fault chaos proxy in front of it, and
// wire.ResilientClients hammering through the proxy. Every fault is
// derived deterministically from -seed, so a failing run replays exactly.
//
// Usage:
//
//	morphchaos                     # full matrix, writes BENCH_fault.json
//	morphchaos -smoke              # reduced matrix for CI (use with -race builds)
//	morphchaos -seed 7 -out f.json
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"github.com/securemem/morphtree/internal/fault"
	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/server"
	"github.com/securemem/morphtree/internal/shard"
	"github.com/securemem/morphtree/internal/wire"
)

const (
	lineBytes = secmem.LineBytes
	memBytes  = 1 << 16 // 1024 lines per scenario engine
	shards    = 4
)

// scenario is one cell of the fault matrix: a fault profile, the server's
// admission posture, and a workload sized to make the faults certain to
// fire.
type scenario struct {
	name    string
	prof    fault.Profile
	clients int
	ops     int           // per client
	timeout time.Duration // per-attempt client deadline

	maxInflight int // 0 = server default
	shedWait    time.Duration
	engineDelay time.Duration // per-op engine slowdown, to force gate contention

	// Harness self-checks: a chaos scenario whose injector never fired
	// proves nothing, so scenarios declare which fault counters must be
	// non-zero.
	wantCuts, wantStalls, wantSheds bool
}

// matrix builds the fault matrix from the run seed. Cut offsets start a
// few frames in (a write request frame is 77 bytes) so every severed
// connection completes some operations first, and the cut cycle sweeps
// every intra-frame byte offset in both directions.
func matrix(seed int64, smoke bool) []scenario {
	full := []scenario{
		{name: "baseline", clients: 4, ops: 200},
		{name: "latency",
			prof:    fault.Profile{Seed: seed, Latency: time.Millisecond, Jitter: time.Millisecond},
			clients: 4, ops: 60},
		{name: "chop", // every byte trickles in 3-byte chunks: reassembly stress
			prof:    fault.Profile{Seed: seed, ChunkBytes: 3},
			clients: 4, ops: 120},
		{name: "cuts", // every conn dies a few frames in; offsets sweep a frame both ways
			prof:     fault.Profile{Seed: seed, CutEvery: 1, CutBase: 310, CutCycle: 77},
			clients:  4, ops: 200,
			wantCuts: true},
		{name: "stalls", // reads freeze past the client deadline: timeout + poison path
			prof:       fault.Profile{Seed: seed, StallEvery: 2, StallAfter: 150, StallFor: 400 * time.Millisecond},
			clients:    4, ops: 80, timeout: 150 * time.Millisecond,
			wantStalls: true},
		{name: "shed", // admission control under 8x oversubscription of one slow slot
			clients: 8, ops: 60, maxInflight: 1, shedWait: -1,
			engineDelay: time.Millisecond, wantSheds: true},
		{name: "mayhem", // everything at once against a constrained server
			prof: fault.Profile{
				Seed: seed, Latency: 200 * time.Microsecond, Jitter: 500 * time.Microsecond,
				ChunkBytes: 7, CutEvery: 3, CutBase: 400, CutCycle: 146,
				StallEvery: 5, StallAfter: 200, StallFor: 400 * time.Millisecond,
			},
			clients: 6, ops: 100, timeout: 200 * time.Millisecond,
			maxInflight: 2, wantCuts: true},
	}
	if !smoke {
		return full
	}
	var reduced []scenario
	for _, sc := range full {
		switch sc.name {
		case "baseline", "cuts", "stalls", "shed", "mayhem":
			sc.ops /= 2
			reduced = append(reduced, sc)
		}
	}
	return reduced
}

// scenarioResult is one row of BENCH_fault.json.
type scenarioResult struct {
	Name    string `json:"name"`
	Clients int    `json:"clients"`

	Ops           uint64 `json:"ops"`
	AckedWrites   uint64 `json:"acked_writes"`
	VerifiedReads uint64 `json:"verified_reads"`

	Mismatches        uint64 `json:"read_mismatches"`
	SpuriousIntegrity uint64 `json:"spurious_integrity_errors"`
	FinalOpFailures   uint64 `json:"final_op_failures"`
	LostAckedWrites   uint64 `json:"lost_acked_writes"`

	Retries    uint64 `json:"retries"`
	Reconnects uint64 `json:"reconnects"`
	Sheds      uint64 `json:"sheds"`

	Proxy    fault.ProxyStats `json:"proxy"`
	VerifyOK bool             `json:"verify_ok"`
	Pass     bool             `json:"pass"`
	Note     string           `json:"note,omitempty"`
}

type report struct {
	Seed      int64            `json:"seed"`
	Smoke     bool             `json:"smoke"`
	Scenarios []scenarioResult `json:"scenarios"`
	Pass      bool             `json:"pass"`
}

func main() {
	seed := flag.Int64("seed", 1, "fault-matrix seed; a failing run replays with the same seed")
	smoke := flag.Bool("smoke", false, "reduced matrix for CI")
	clusterMode := flag.Bool("cluster", false, "node-kill matrix against a 3-node replication cluster (writes BENCH_cluster.json by default)")
	out := flag.String("out", "", "report file (default BENCH_fault.json, or BENCH_cluster.json with -cluster)")
	flag.Parse()

	if *out == "" {
		*out = "BENCH_fault.json"
		if *clusterMode {
			*out = "BENCH_cluster.json"
		}
	}
	if *clusterMode {
		runClusterMode(*seed, *smoke, *out)
		return
	}

	rep := report{Seed: *seed, Smoke: *smoke, Pass: true}
	start := time.Now()
	for _, sc := range matrix(*seed, *smoke) {
		res, err := runScenario(sc, *seed)
		if err != nil {
			log.Fatalf("morphchaos: %s: %v", sc.name, err)
		}
		rep.Scenarios = append(rep.Scenarios, res)
		if !res.Pass {
			rep.Pass = false
		}
		status := "ok"
		if !res.Pass {
			status = "FAIL " + res.Note
		}
		fmt.Printf("morphchaos: %-8s %5d ops, %4d acked writes, %3d retries, %3d reconnects, %3d sheds, %3d cuts, %2d stalls — %s\n",
			sc.name, res.Ops, res.AckedWrites, res.Retries, res.Reconnects, res.Sheds,
			res.Proxy.Cuts, res.Proxy.Stalls, status)
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("morphchaos: %v", err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		log.Fatalf("morphchaos: %v", err)
	}
	verdict := "PASS"
	if !rep.Pass {
		verdict = "FAIL"
	}
	fmt.Printf("morphchaos: %s in %v — 0 lost acked writes and 0 spurious integrity errors required (%s)\n",
		verdict, time.Since(start).Round(time.Millisecond), *out)
	if !rep.Pass {
		os.Exit(1)
	}
}

// runScenario stands up engine + server + proxy, runs the closed-loop
// workload through the faults, then audits the engine over a clean
// connection: every acknowledged write must be present, and the whole
// tree must still verify.
func runScenario(sc scenario, seed int64) (scenarioResult, error) {
	res := scenarioResult{Name: sc.name, Clients: sc.clients}

	enc, tree, err := shard.Organization("morph128")
	if err != nil {
		return res, err
	}
	eng, err := shard.New(shard.Config{
		Shards: shards,
		Mem: secmem.Config{
			MemoryBytes: memBytes,
			Enc:         enc,
			Tree:        tree,
			Key:         []byte("0123456789abcdef"),
		},
	})
	if err != nil {
		return res, err
	}
	var serveEng server.Engine = eng
	if sc.engineDelay > 0 {
		serveEng = slowEngine{Engine: eng, delay: sc.engineDelay}
	}
	srvAddr, stopServer, err := startServer(serveEng, server.Config{
		MaxInflight: sc.maxInflight,
		ShedWait:    sc.shedWait,
	})
	if err != nil {
		return res, err
	}
	defer stopServer()
	proxy, stopProxy, err := fault.Start(srvAddr, sc.prof)
	if err != nil {
		return res, err
	}

	timeout := sc.timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	lines := uint64(memBytes / lineBytes / sc.clients)
	workers := make([]workerResult, sc.clients)
	var wg sync.WaitGroup
	for c := 0; c < sc.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := wire.NewResilient(wire.ResilientConfig{
				Addr:        proxy.Addr().String(),
				Timeout:     timeout,
				MaxAttempts: 10,
				BaseBackoff: 2 * time.Millisecond,
				MaxBackoff:  50 * time.Millisecond,
				RetryWrites: true, // safe: retries rewrite identical content
				Seed:        seed + int64(c),
			})
			defer cl.Close()
			workers[c] = worker(cl, rand.New(rand.NewSource(seed+int64(c)*7919)),
				uint64(c)*lines*lineBytes, lines, sc.ops)
		}(c)
	}
	wg.Wait()
	stopProxy() // stop injecting before the audit
	res.Proxy = proxy.Stats()

	for c := range workers {
		w := &workers[c]
		res.Ops += w.reads + w.writes + w.finalFailures
		res.AckedWrites += w.writes
		res.VerifiedReads += w.verified
		res.Mismatches += w.mismatches
		res.SpuriousIntegrity += w.spuriousIntegrity
		res.FinalOpFailures += w.finalFailures
		res.Retries += w.net.Retries
		res.Reconnects += w.net.Reconnects
		res.Sheds += w.net.Sheds
	}

	// Audit over a clean connection straight to the server: no proxy, no
	// faults — what is actually in the secure memory?
	direct := wire.NewResilient(wire.ResilientConfig{Addr: srvAddr, Timeout: 10 * time.Second, Seed: seed - 1})
	defer direct.Close()
	for c := range workers {
		w := &workers[c]
		for a := range w.seqs {
			got, err := direct.Read(a)
			if err != nil || !w.acceptable(got, a) {
				res.LostAckedWrites++
			}
		}
	}
	res.VerifyOK = direct.Verify() == nil

	res.Pass = res.Mismatches == 0 && res.SpuriousIntegrity == 0 &&
		res.LostAckedWrites == 0 && res.VerifyOK
	switch {
	case !res.Pass:
		res.Note = fmt.Sprintf("%d mismatches, %d spurious integrity, %d lost acked writes, verify_ok=%v",
			res.Mismatches, res.SpuriousIntegrity, res.LostAckedWrites, res.VerifyOK)
	case sc.wantCuts && res.Proxy.Cuts == 0:
		res.Pass, res.Note = false, "injector misfire: expected cuts, saw none"
	case sc.wantStalls && res.Proxy.Stalls == 0:
		res.Pass, res.Note = false, "injector misfire: expected stalls, saw none"
	case sc.wantSheds && res.Sheds == 0:
		res.Pass, res.Note = false, "injector misfire: expected sheds, saw none"
	}
	return res, nil
}

// workerResult is one client's view of the run: what it got acknowledged
// (seqs), what a fault left indeterminate (maybe), and what it observed.
//
// maybe holds every sequence a finally-failed write may or may not have
// applied. The protocol has no request IDs, so such a request can also be
// a zombie: still buffered in the network and applied *after* later
// operations complete. The worker therefore quarantines the line — no
// further writes to it this run — because an acknowledgment on a line
// with a live zombie can be overwritten through no fault of the server.
// Reads and the final audit accept the last acked value or any
// indeterminate one.
type workerResult struct {
	seqs  map[uint64]uint64
	maybe map[uint64][]uint64

	reads, writes     uint64 // completed (acknowledged) ops
	verified          uint64
	mismatches        uint64
	spuriousIntegrity uint64
	finalFailures     uint64
	net               wire.ResilientStats
}

// worker runs a closed loop of ops mixed 50/50 read/write over its own
// line range, verifying every read against the acknowledged history. An
// op that fails even after the retry budget counts as a final failure and
// the loop keeps going — liveness through faults is part of the contract.
func worker(cl *wire.ResilientClient, rng *rand.Rand, base, lines uint64, ops int) workerResult {
	w := workerResult{
		seqs:  make(map[uint64]uint64, lines),
		maybe: make(map[uint64][]uint64, 4),
	}
	for op := 0; op < ops; op++ {
		a := base + uint64(rng.Int63n(int64(lines)))*lineBytes
		// Quarantined lines are only read: a zombie request may still be
		// in flight, and a fresh ack it could overwrite would read as a
		// lost write that the server never actually lost.
		if rng.Float64() < 0.5 && len(w.maybe[a]) == 0 {
			seq := w.seqs[a] + 1
			if err := cl.Write(a, fill(a, seq)); err != nil {
				w.record(err)
				w.maybe[a] = append(w.maybe[a], seq)
				continue
			}
			w.seqs[a] = seq
			w.writes++
		} else {
			got, err := cl.Read(a)
			if err != nil {
				w.record(err)
				continue
			}
			w.reads++
			if w.acceptable(got, a) {
				w.verified++
			} else {
				w.mismatches++
			}
		}
	}
	w.net = cl.Counters()
	return w
}

// acceptable reports whether got is a content the acknowledged history
// permits for line a: the last acked value (zeros if never acked), or any
// indeterminate write to the line. No promotion happens on a match — a
// zombie can still flip the line among these values later.
func (w *workerResult) acceptable(got []byte, a uint64) bool {
	if s, ok := w.seqs[a]; ok {
		if bytes.Equal(got, fill(a, s)) {
			return true
		}
	} else if bytes.Equal(got, make([]byte, lineBytes)) {
		return true
	}
	for _, m := range w.maybe[a] {
		if bytes.Equal(got, fill(a, m)) {
			return true
		}
	}
	return false
}

func (w *workerResult) record(err error) {
	var ie *secmem.IntegrityError
	if errors.As(err, &ie) {
		w.spuriousIntegrity++
		return
	}
	w.finalFailures++
}


// slowEngine holds each data op inside the engine for delay, so a tiny
// MaxInflight reliably saturates and the admission gate must shed.
type slowEngine struct {
	server.Engine
	delay time.Duration
}

func (s slowEngine) Read(addr uint64) ([]byte, error) {
	time.Sleep(s.delay)
	return s.Engine.Read(addr)
}

func (s slowEngine) Write(addr uint64, line []byte) error {
	time.Sleep(s.delay)
	return s.Engine.Write(addr, line)
}

// startServer runs the wire server on a loopback listener; the returned
// shutdown cancels its context and waits for the drain.
func startServer(eng server.Engine, cfg server.Config) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- server.New(eng, cfg).Serve(ctx, ln) }()
	return ln.Addr().String(), func() {
		cancel()
		if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
			log.Printf("morphchaos: server shutdown: %v", err)
		}
	}, nil
}

// fill produces the deterministic line contents for (addr, seq) — the
// same pattern morphload uses.
func fill(addr, seq uint64) []byte {
	line := make([]byte, lineBytes)
	for i := 0; i < lineBytes; i += 16 {
		binary.LittleEndian.PutUint64(line[i:], addr^seq)
		binary.LittleEndian.PutUint64(line[i+8:], seq*0x9e3779b97f4a7c15+uint64(i))
	}
	return line
}
