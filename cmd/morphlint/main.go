// Command morphlint is the repository's static-analysis suite: eight
// analyzers enforcing secure-memory invariants the compiler cannot see
// (see DESIGN.md "Checked invariants" and §13), three of them
// interprocedural — facts about key material, allocation behavior and
// lock acquisition flow between packages through the vet fact channel.
//
// Usage:
//
//	go run ./cmd/morphlint ./...                 # standalone (re-execs go vet)
//	go build -o morphlint ./cmd/morphlint
//	go vet -vettool=./morphlint ./...            # as a vet tool
//
//	morphlint -json ./...                        # diagnostics as JSON on stdout
//	morphlint -baseline lint.baseline ./...      # suppress known findings
//	morphlint -baseline lint.baseline -write-baseline ./...  # regenerate
//
// morphlint speaks the `go vet -vettool` protocol (see
// internal/analysis/unitchecker.go), so the go command handles package
// loading, export data, fact-file plumbing and caching; results are
// identical either way. The -json/-baseline flags are handled in the
// standalone parent process only — vet callback units never see them.
// Findings are suppressed line-by-line with a justified directive:
//
//	//morphlint:allow <analyzer> -- reason
package main

import (
	"fmt"
	"os"
	"strings"

	"github.com/securemem/morphtree/internal/analysis"
	"github.com/securemem/morphtree/internal/lint"
)

func main() {
	args := os.Args[1:]

	// go vet protocol handshakes.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			analysis.PrintVersion(os.Stdout)
			return
		case args[0] == "-flags":
			analysis.PrintFlags(os.Stdout)
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(analysis.RunUnit(args[0], lint.Analyzers()))
		}
	}

	// Direct invocation: parse morphlint's own flags, then let go vet
	// drive this same binary.
	var opts analysis.StandaloneOptions
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		arg := args[0]
		args = args[1:]
		switch {
		case arg == "-json":
			opts.JSON = true
		case arg == "-write-baseline":
			opts.WriteBaseline = true
		case arg == "-baseline":
			if len(args) == 0 {
				fmt.Fprintln(os.Stderr, "morphlint: -baseline requires a file argument")
				os.Exit(1)
			}
			opts.BaselinePath = args[0]
			args = args[1:]
		case strings.HasPrefix(arg, "-baseline="):
			opts.BaselinePath = strings.TrimPrefix(arg, "-baseline=")
		default:
			fmt.Fprintf(os.Stderr, "morphlint: unknown flag %s\n", arg)
			os.Exit(1)
		}
	}
	opts.Patterns = args
	os.Exit(analysis.RunStandalone(opts))
}
