// Command morphlint is the repository's static-analysis suite: five
// analyzers enforcing secure-memory invariants the compiler cannot see
// (see DESIGN.md "Checked invariants").
//
// Usage:
//
//	go run ./cmd/morphlint ./...                 # standalone (re-execs go vet)
//	go build -o morphlint ./cmd/morphlint
//	go vet -vettool=./morphlint ./...            # as a vet tool
//
// morphlint speaks the `go vet -vettool` protocol (see
// internal/analysis/unitchecker.go), so the go command handles package
// loading, export data and caching; results are identical either way.
// Findings are suppressed line-by-line with a justified directive:
//
//	//morphlint:allow <analyzer> -- reason
package main

import (
	"os"
	"strings"

	"github.com/securemem/morphtree/internal/analysis"
	"github.com/securemem/morphtree/internal/lint"
)

func main() {
	args := os.Args[1:]

	// go vet protocol handshakes.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			analysis.PrintVersion(os.Stdout)
			return
		case args[0] == "-flags":
			analysis.PrintFlags(os.Stdout)
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(analysis.RunUnit(args[0], lint.Analyzers()))
		}
	}

	// Direct invocation: let go vet drive this same binary.
	os.Exit(analysis.RunStandalone(args))
}
