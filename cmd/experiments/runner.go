package main

import (
	"fmt"
	"math"
	"os"

	"github.com/securemem/morphtree/internal/sim"
	"github.com/securemem/morphtree/internal/workloads"
)

// runner memoizes simulation results so experiments sharing a
// configuration-workload pair (e.g. Figures 15, 16 and 18) run it once.
type runner struct {
	opt   sim.RunOptions
	cache map[string]*sim.Result
	all   []workloads.Workload
}

func newRunner(opt sim.RunOptions) *runner {
	return &runner{
		opt:   opt,
		cache: make(map[string]*sim.Result),
		all:   workloads.All(4),
	}
}

// run simulates (or recalls) one configuration-workload pair.
func (r *runner) run(cfg sim.Config, w workloads.Workload) *sim.Result {
	key := cfg.Name + "/" + w.Name
	if cfg.SeparateMAC {
		key += "/sepmac"
	}
	key += fmt.Sprintf("/%d", cfg.MetaCacheBytes)
	if res, ok := r.cache[key]; ok {
		return res
	}
	res, err := sim.Run(cfg, w, r.opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulation %s failed: %v\n", key, err)
		os.Exit(1)
	}
	r.cache[key] = res
	fmt.Fprintf(os.Stderr, ".")
	return res
}

// sweep runs one configuration over the full 28-workload evaluation set.
func (r *runner) sweep(cfg sim.Config) map[string]*sim.Result {
	out := make(map[string]*sim.Result, len(r.all))
	for _, w := range r.all {
		out[w.Name] = r.run(cfg, w)
	}
	return out
}

// gmean returns the geometric mean of positive values.
func gmean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// mean returns the arithmetic mean.
func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// suiteOf groups workloads as the paper's figures do.
func suiteNames(r *runner, suite string) []string {
	var names []string
	for _, w := range r.all {
		if w.Suite == suite {
			names = append(names, w.Name)
		}
	}
	return names
}
