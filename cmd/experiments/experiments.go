package main

import (
	"fmt"

	"github.com/securemem/morphtree/internal/counters"
	"github.com/securemem/morphtree/internal/sim"
	"github.com/securemem/morphtree/internal/tree"
	"github.com/securemem/morphtree/internal/workloads"
)

// geometry presets at the paper's 16 GB capacity.
func paperGeometries() []struct {
	name string
	g    *tree.Geometry
} {
	mk := func(name string, encArity int, arities []int) struct {
		name string
		g    *tree.Geometry
	} {
		g, err := tree.New(sim.PaperMemoryBytes, encArity, arities)
		if err != nil {
			panic(err)
		}
		return struct {
			name string
			g    *tree.Geometry
		}{name, g}
	}
	return []struct {
		name string
		g    *tree.Geometry
	}{
		mk("Commercial-SGX", 8, []int{8}),
		mk("VAULT", 64, []int{32, 16}),
		mk("SC-64", 64, []int{64}),
		mk("MorphCtr-128", 128, []int{128}),
	}
}

func table1(*runner) {
	header("Table I: Baseline System Configuration")
	cfg := sim.SC64()
	fmt.Printf("  %-34s %d\n", "Number of cores", cfg.Cores)
	fmt.Printf("  %-34s %.1fGHz\n", "Processor clock speed", cfg.CPUHz/1e9)
	fmt.Printf("  %-34s %d\n", "Processor ROB size", cfg.ROBSize)
	fmt.Printf("  %-34s %d\n", "Processor fetch / retire width", cfg.FetchWidth)
	fmt.Printf("  %-34s %s, %d-way, 64B lines (scaled; paper: 128KB)\n",
		"Metadata Cache (Shared)", tree.FormatBytes(cfg.MetaCacheBytes), cfg.MetaCacheWays)
	fmt.Printf("  %-34s %s timing-sim (paper: 16GB; geometry results use 16GB)\n",
		"Memory size", tree.FormatBytes(cfg.MemoryBytes))
	fmt.Printf("  %-34s %dMHz\n", "Memory bus speed", 800)
	fmt.Printf("  %-34s %d x %d x %d\n", "Banks x Ranks x Channels",
		cfg.DRAM.Banks, cfg.DRAM.Ranks, cfg.DRAM.Channels)
	fmt.Printf("  %-34s %dK\n", "Rows per bank", cfg.DRAM.RowsPerBank>>10)
	fmt.Printf("  %-34s %d\n", "Columns (cache lines) per row", cfg.DRAM.ColumnsPerRow)
	fmt.Printf("  %-34s Random (dense resident set, affine scatter)\n", "OS Page Allocation Policy")
}

func table2(*runner) {
	header("Table II: Workload Characteristics (per paper; synthetic generators)")
	fmt.Printf("  %-12s %-5s %8s %9s %14s %s\n", "Workload", "Suite", "Read-PKI", "Write-PKI", "Footprint(GB)", "Pattern")
	for _, b := range workloads.Table2 {
		fmt.Printf("  %-12s %-5s %8.1f %9.1f %14.1f %s\n",
			b.Name, b.Suite, b.ReadPKI, b.WritePKI, float64(b.Footprint)/(1<<30), b.Pattern)
	}
}

func fig1(*runner) {
	header("Figure 1: Integrity-tree size and height (16GB memory)")
	for _, pg := range paperGeometries() {
		if pg.name == "Commercial-SGX" {
			continue
		}
		fmt.Printf("  %-14s tree %7s  (%d levels)   encryption counters %s\n",
			pg.name, tree.FormatBytes(pg.g.TreeBytes()), pg.g.NumLevels(),
			tree.FormatBytes(pg.g.EncCounterBytes()))
	}
	fmt.Println("  paper: VAULT 8.5MB/6 levels, SC-64 4MB/4 levels, MorphCtr-128 1MB/3 levels")
}

func fig17(*runner) {
	header("Figure 17: Per-level footprints (16GB memory)")
	for _, pg := range paperGeometries() {
		if pg.name == "Commercial-SGX" {
			continue
		}
		fmt.Printf("  %-14s enc=%s", pg.name, tree.FormatBytes(pg.g.EncCounterBytes()))
		for _, l := range pg.g.Levels {
			fmt.Printf("  L%d=%s", l.Level, tree.FormatBytes(l.Bytes))
		}
		fmt.Println()
	}
}

func table3(*runner) {
	header("Table III: Storage overheads for 16GB memory")
	fmt.Printf("  %-16s %22s %22s\n", "Configuration", "Encryption Counters", "Integrity-Tree")
	for _, pg := range paperGeometries() {
		fmt.Printf("  %-16s %12s (%5.3f%%) %12s (%6.4f%%)\n", pg.name,
			tree.FormatBytes(pg.g.EncCounterBytes()), pg.g.EncOverheadPercent(),
			tree.FormatBytes(pg.g.TreeBytes()), pg.g.TreeOverheadPercent())
	}
	fmt.Println("  paper: SGX 2GB+292MB, VAULT 256MB+8.5MB, SC-64 256MB+4MB, MorphCtr 128MB+1MB")
}

func fig6(*runner) {
	header("Figure 6: Writes per overflow vs fraction of counter-cacheline used (split counters)")
	fmt.Printf("  %-10s %12s %12s\n", "fraction", "SC-64", "SC-128")
	for _, u := range []int{1, 2, 4, 8, 16, 32, 48, 64} {
		f := float64(u) / 64
		fmt.Printf("  %-10.3f %12d %12d\n", f,
			counters.SplitWritesToOverflow(64, u),
			counters.SplitWritesToOverflow(128, 2*u))
	}
	fmt.Println("  paper: SC-128 tolerates 8x fewer writes than SC-64 at equal counter count")
}

func fig10(*runner) {
	header("Figure 10: Writes per overflow, MorphCtr-128 (ZCC) vs SC-64")
	fmt.Printf("  %-10s %12s %14s\n", "fraction", "SC-64", "MorphCtr(ZCC)")
	for _, u := range []int{1, 2, 4, 8, 16, 32, 48, 64} {
		f := float64(u) / 64
		fmt.Printf("  %-10.3f %12d %14d\n", f,
			counters.SplitWritesToOverflow(64, u),
			counters.ZCCWritesToOverflow(2*u))
	}
	fmt.Printf("  MCR uniform-write tolerance: %d writes (paper: 500+)\n", counters.MCRWritesToOverflow())
	fmt.Printf("  pathological adversarial pattern: %d writes (paper: 67)\n", counters.PathologicalZCCWrites())
}

func fig7(r *runner) {
	header("Figure 7: Fraction of counter-cacheline used at overflow (SC-64, all workloads)")
	results := r.sweep(sim.SC64())
	var hist [sim.HistBuckets]float64
	n := 0
	for _, res := range results {
		var total uint64
		for _, v := range res.Stats.OverflowHist {
			total += v
		}
		if total == 0 {
			continue
		}
		n++
		for i, v := range res.Stats.OverflowHist {
			hist[i] += float64(v) / float64(total)
		}
	}
	for i := range hist {
		if n > 0 {
			hist[i] /= float64(n)
		}
		fmt.Printf("  %4.1f-%4.1f  %6.3f  %s\n", float64(i)/10, float64(i+1)/10,
			hist[i], bar(hist[i], 0.5))
	}
	low := hist[0] + hist[1] + hist[2]
	high := hist[sim.HistBuckets-1]
	fmt.Printf("  <25%% used: %.2f   100%% used: %.2f  (paper: bimodal — most overflows at <25%% or ~100%%)\n", low, high)
}

func overflowTable(r *runner, cfgs []sim.Config, paperNote string) {
	fmt.Printf("  %-12s", "workload")
	for _, c := range cfgs {
		fmt.Printf(" %16s", c.Name)
	}
	fmt.Println()
	means := make([][]float64, len(cfgs))
	for _, w := range r.all {
		if w.Suite == "MIX" {
			continue // the paper's overflow figures show the 22 benchmarks
		}
		fmt.Printf("  %-12s", w.Name)
		for i, c := range cfgs {
			res := r.run(c, w)
			v := res.OverflowsPerMillion()
			means[i] = append(means[i], v)
			fmt.Printf(" %16.1f", v)
		}
		fmt.Println()
	}
	fmt.Printf("  %-12s", "Average")
	for i := range cfgs {
		fmt.Printf(" %16.1f", mean(means[i]))
	}
	fmt.Println()
	fmt.Println("  " + paperNote)
}

func fig11(r *runner) {
	header("Figure 11: Overflows per million memory accesses (ZCC-only)")
	overflowTable(r,
		[]sim.Config{sim.SC64(), sim.SC128(), sim.MorphCtr128ZCC()},
		"paper: SC-128 ~7.4x SC-64; MorphCtr(ZCC) ~1.4x fewer than SC-64, ~10.2x fewer than SC-128")
}

func fig14(r *runner) {
	header("Figure 14: Overflows per million memory accesses (ZCC+Rebasing)")
	overflowTable(r,
		[]sim.Config{sim.SC64(), sim.MorphCtr128ZCC(), sim.MorphCtr128()},
		"paper: ZCC+Rebasing ~1.6x fewer overflows than SC-64 (ZCC-only: ~1.4x)")
}

func fig5(r *runner) {
	header("Figure 5: Impact of counter arity (normalized to SC-64)")
	cfgs := []sim.Config{sim.VAULT(), sim.SC64(), sim.SC128()}
	base := r.sweep(sim.SC64())
	ns := r.sweep(sim.NonSecure())
	fmt.Printf("  (a) Performance (gmean IPC relative to SC-64):\n")
	var nsRel []float64
	for _, w := range r.all {
		nsRel = append(nsRel, ns[w.Name].IPC/base[w.Name].IPC)
	}
	fmt.Printf("      %-12s %6.3f   (paper: ~1.40 — the 40%% gap of Section II-B)\n", "Non-Secure", gmean(nsRel))
	for _, c := range cfgs {
		res := r.sweep(c)
		var rel []float64
		for _, w := range r.all {
			rel = append(rel, res[w.Name].IPC/base[w.Name].IPC)
		}
		fmt.Printf("      %-12s %6.3f\n", c.Name, gmean(rel))
	}
	fmt.Println("      paper: VAULT 0.936, SC-64 1.000, SC-128 0.72")
	fmt.Printf("  (b) Memory accesses per data access (average):\n")
	fmt.Printf("      %-12s %8s %8s %8s %8s %8s %8s %8s\n",
		"config", "Data", "CtrEncr", "Ctr1", "Ctr2", "Ctr3&Up", "Overflow", "Total")
	for _, c := range cfgs {
		res := r.sweep(c)
		printTrafficRow(r, c.Name, res)
	}
	fmt.Println("      paper: VAULT 0.7 ctr + ~0.01 ovf; SC-64 0.5 ctr + 0.07 ovf; SC-128 0.4 ctr + ~1.0 ovf")
}

func printTrafficRow(r *runner, name string, res map[string]*sim.Result) {
	cats := []sim.Category{sim.CatData, sim.CatCtrEncr, sim.CatCtr1, sim.CatCtr2, sim.CatCtr3Up, sim.CatOverflow}
	var sums [7]float64
	for _, w := range r.all {
		re := res[w.Name]
		for i, c := range cats {
			sums[i] += re.CategoryPerDataAccess(c)
		}
		sums[6] += re.MemAccessPerDataAccess()
	}
	n := float64(len(r.all))
	fmt.Printf("      %-12s", name)
	for i := range sums {
		fmt.Printf(" %8.3f", sums[i]/n)
	}
	fmt.Println()
}

func fig15(r *runner) {
	header("Figure 15: Performance normalized to SC-64 (VAULT / SC-64 / MorphCtr-128)")
	vault := r.sweep(sim.VAULT())
	base := r.sweep(sim.SC64())
	morph := r.sweep(sim.MorphCtr128())
	fmt.Printf("  %-12s %8s %8s %12s\n", "workload", "VAULT", "SC-64", "MorphCtr-128")
	var vAll, mAll []float64
	suiteAcc := map[string][2][]float64{}
	for _, w := range r.all {
		v := vault[w.Name].IPC / base[w.Name].IPC
		m := morph[w.Name].IPC / base[w.Name].IPC
		vAll = append(vAll, v)
		mAll = append(mAll, m)
		acc := suiteAcc[w.Suite]
		acc[0] = append(acc[0], v)
		acc[1] = append(acc[1], m)
		suiteAcc[w.Suite] = acc
		fmt.Printf("  %-12s %8.3f %8.3f %12.3f\n", w.Name, v, 1.0, m)
	}
	for _, suite := range []string{"SPEC", "MIX", "GAP"} {
		acc := suiteAcc[suite]
		fmt.Printf("  %-12s %8.3f %8.3f %12.3f\n", "GMEAN-"+suite, gmean(acc[0]), 1.0, gmean(acc[1]))
	}
	fmt.Printf("  %-12s %8.3f %8.3f %12.3f\n", "GMEAN-ALL28", gmean(vAll), 1.0, gmean(mAll))
	fmt.Println("  paper: VAULT 0.936 (up to -x%), MorphCtr-128 1.063 on average (up to 1.283)")
}

func fig16(r *runner) {
	header("Figure 16: Memory accesses per data access, by stream")
	vault := r.sweep(sim.VAULT())
	base := r.sweep(sim.SC64())
	morph := r.sweep(sim.MorphCtr128())
	fmt.Printf("  %-12s | %25s | %25s | %25s\n", "", "VAULT", "SC-64", "MorphCtr-128")
	fmt.Printf("  %-12s | %8s %8s %7s | %8s %8s %7s | %8s %8s %7s\n", "workload",
		"ctrs", "overflow", "total", "ctrs", "overflow", "total", "ctrs", "overflow", "total")
	row := func(name string, v, b, m *sim.Result) {
		pr := func(re *sim.Result) {
			ctrs := re.CategoryPerDataAccess(sim.CatCtrEncr) + re.CategoryPerDataAccess(sim.CatCtr1) +
				re.CategoryPerDataAccess(sim.CatCtr2) + re.CategoryPerDataAccess(sim.CatCtr3Up)
			fmt.Printf(" %8.3f %8.3f %7.3f |", ctrs, re.CategoryPerDataAccess(sim.CatOverflow), re.MemAccessPerDataAccess())
		}
		fmt.Printf("  %-12s |", name)
		pr(v)
		pr(b)
		pr(m)
		fmt.Println()
	}
	for _, w := range r.all {
		row(w.Name, vault[w.Name], base[w.Name], morph[w.Name])
	}
	var vT, bT, mT []float64
	for _, w := range r.all {
		vT = append(vT, vault[w.Name].MemAccessPerDataAccess())
		bT = append(bT, base[w.Name].MemAccessPerDataAccess())
		mT = append(mT, morph[w.Name].MemAccessPerDataAccess())
	}
	fmt.Printf("  AVG totals: VAULT %.3f  SC-64 %.3f  MorphCtr-128 %.3f\n", mean(vT), mean(bT), mean(mT))
	fmt.Println("  paper: MorphCtr reduces traffic ~8.8% vs SC-64; VAULT +9.7% vs SC-64")
}

func fig18(r *runner) {
	header("Figure 18: Power, Execution Time, Energy, EDP (normalized to SC-64)")
	cfgs := []sim.Config{sim.VAULT(), sim.SC64(), sim.MorphCtr128()}
	base := r.sweep(sim.SC64())
	fmt.Printf("  %-14s %8s %10s %8s %8s\n", "config", "Power", "ExecTime", "Energy", "EDP")
	for _, c := range cfgs {
		res := r.sweep(c)
		var pw, tm, en, edp []float64
		for _, w := range r.all {
			b := base[w.Name]
			x := res[w.Name]
			pw = append(pw, x.Energy.AvgPowerW/b.Energy.AvgPowerW)
			tm = append(tm, x.Seconds/b.Seconds)
			en = append(en, x.Energy.TotalJ/b.Energy.TotalJ)
			edp = append(edp, x.Energy.EDP/b.Energy.EDP)
		}
		fmt.Printf("  %-14s %8.3f %10.3f %8.3f %8.3f\n", c.Name,
			gmean(pw), gmean(tm), gmean(en), gmean(edp))
	}
	fmt.Println("  paper: MorphCtr -6% time, +4% power, -2.7% energy, -8.8% EDP; VAULT +3.2% energy, +10.5% EDP")
}

func fig19(r *runner) {
	header("Figure 19: Sensitivity to metadata cache size (speedup vs SC-64 at each size)")
	sizes := []uint64{
		sim.DefaultMetaCacheBytes / 2, sim.DefaultMetaCacheBytes,
		sim.DefaultMetaCacheBytes * 2, sim.DefaultMetaCacheBytes * 4,
	}
	labels := []string{"0.5x default", "1x default (paper 128KB)", "2x default", "4x default"}
	for i, size := range sizes {
		sc := sim.SC64()
		sc.MetaCacheBytes = size
		mo := sim.MorphCtr128()
		mo.MetaCacheBytes = size
		b := r.sweep(sc)
		m := r.sweep(mo)
		var rel []float64
		for _, w := range r.all {
			rel = append(rel, m[w.Name].IPC/b[w.Name].IPC)
		}
		fmt.Printf("  %-24s (scaled %6s): MorphCtr speedup %.3f\n",
			labels[i], tree.FormatBytes(size), gmean(rel))
	}
	fmt.Println("  paper: 11% at 64KB, 6.3% at 128KB, 3.3% at 256KB — gains grow as the cache")
	fmt.Println("  shrinks (until both designs thrash; see examples/cachetune for the full curve)")
}

func fig20(r *runner) {
	header("Figure 20: Separate vs In-Line MACs (normalized to SC-64 In-Line)")
	base := r.sweep(sim.SC64())
	configs := []struct {
		cfg   sim.Config
		label string
	}{
		{sepMAC(sim.SC64()), "SC-64 Separate-MACs"},
		{sepMAC(sim.MorphCtr128()), "MorphCtr Separate-MACs"},
		{sim.SC64(), "SC-64 In-Line"},
		{sim.MorphCtr128(), "MorphCtr In-Line"},
	}
	for _, c := range configs {
		res := r.sweep(c.cfg)
		var rel []float64
		for _, w := range r.all {
			rel = append(rel, res[w.Name].IPC/base[w.Name].IPC)
		}
		fmt.Printf("  %-26s %6.3f\n", c.label, gmean(rel))
	}
	fmt.Println("  paper: separate MACs ~29% slower for both; MorphCtr +4.7% (separate) vs +6.3% (in-line)")
}

func sepMAC(c sim.Config) sim.Config {
	c.Name += "-sepmac"
	c.SeparateMAC = true
	return c
}

func scaling(*runner) {
	header("Scaling: integrity-tree footprint vs memory capacity (analytic)")
	fmt.Printf("  %-10s %16s %16s %16s\n", "capacity", "VAULT", "SC-64", "MorphCtr-128")
	for _, gb := range []uint64{4, 16, 64, 256, 1024} {
		mem := gb << 30
		row := fmt.Sprintf("  %-10s", tree.FormatBytes(mem))
		for _, d := range []struct {
			enc  int
			tree []int
		}{{64, []int{32, 16}}, {64, []int{64}}, {128, []int{128}}} {
			g, err := tree.New(mem, d.enc, d.tree)
			if err != nil {
				panic(err)
			}
			row += fmt.Sprintf(" %9s/%d lvl", tree.FormatBytes(g.TreeBytes()), g.NumLevels())
		}
		fmt.Println(row)
	}
	fmt.Println("  the MorphTree's 4x size and one-level advantage persists at every capacity;")
	fmt.Println("  its higher arity defers each extra level by 128x instead of 64x of growth")
}

func dos(r *runner) {
	header("Section V: Denial-of-service resilience and fairness-driven scheduling")
	fmt.Printf("  analytic: adversarial pattern forces an overflow every %d writes (paper: 67);\n",
		counters.PathologicalZCCWrites())
	fmt.Printf("  baseline SC-64 overflows every %d writes worst-case.\n\n",
		counters.SplitWritesToOverflow(64, 1))

	victim, err := workloads.ByName("omnetpp")
	if err != nil {
		panic(err)
	}
	attack := workloads.AttackMix(victim, 4)
	solo := workloads.Rate(victim, 4)

	victimIPC := func(res *sim.Result, skipFirst bool) float64 {
		cores := res.PerCoreIPC
		if skipFirst {
			cores = cores[1:]
		}
		var sum float64
		for _, v := range cores {
			sum += v
		}
		return sum / float64(len(cores))
	}
	base := r.run(sim.MorphCtr128(), solo)
	under := r.run(sim.MorphCtr128(), attack)
	fair := sim.MorphCtr128()
	fair.Name = "MorphCtr-128+fair"
	fair.FairOverflowThrottle = true
	shielded := r.run(fair, attack)

	ref := victimIPC(base, false)
	fmt.Printf("  %-44s %8s %10s\n", "scenario (victim = omnetpp x3)", "IPC", "vs solo")
	fmt.Printf("  %-44s %8.4f %9.1f%%\n", "victims alone (no attacker)", ref, 0.0)
	fmt.Printf("  %-44s %8.4f %9.1f%%\n", "victims + overflow adversary",
		victimIPC(under, true), (victimIPC(under, true)/ref-1)*100)
	fmt.Printf("  %-44s %8.4f %9.1f%%\n", "victims + adversary, fairness throttle",
		victimIPC(shielded, true), (victimIPC(shielded, true)/ref-1)*100)
	fmt.Printf("  adversary overflow traffic: %.2f accesses per data access\n",
		under.CategoryPerDataAccess(sim.CatOverflow))
	fmt.Println("  paper: fairness-driven memory scheduling can throttle the pathological")
	fmt.Println("  application's overflow handling and maintain serviceability of others")
}

func related(r *runner) {
	header("Related-work ablations (Section VIII): MAC trees and speculative verification")
	base := r.sweep(sim.SC64())
	typeAware := sim.MorphCtr128()
	typeAware.Name = "MorphCtr-128+TA"
	typeAware.TypeAwareCache = true
	configs := []sim.Config{sim.BonsaiMerkle(), sim.Delta64(), sim.SC64(), sim.MorphCtr128(), sim.MorphSpeculative(), typeAware}
	fmt.Printf("  %-20s %10s %12s\n", "config", "IPC/SC-64", "traffic/DA")
	for _, c := range configs {
		res := r.sweep(c)
		var rel, traf []float64
		for _, w := range r.all {
			rel = append(rel, res[w.Name].IPC/base[w.Name].IPC)
			traf = append(traf, res[w.Name].MemAccessPerDataAccess())
		}
		fmt.Printf("  %-20s %10.3f %12.3f\n", c.Name, gmean(rel), mean(traf))
	}
	fmt.Println("  8-ary MAC trees pay for their height (Section VIII-B1); delta encoding [19]")
	fmt.Println("  only reduces overflows, not tree height; speculation hides the (already")
	fmt.Println("  parallel) walk latency but not its bandwidth (Section VIII-B2); +TA is the")
	fmt.Println("  type-aware metadata caching of [12]/[46], orthogonal to MorphCtr as claimed")
}

// bar renders a proportional ASCII bar.
func bar(v, max float64) string {
	n := int(v / max * 40)
	if n > 40 {
		n = 40
	}
	out := ""
	for i := 0; i < n; i++ {
		out += "#"
	}
	return out
}
