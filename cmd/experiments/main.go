// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Geometry results
// (Figures 1, 17; Table III) are computed exactly at the paper's 16 GB;
// timing results run the performance simulator at the scaled configuration
// described in DESIGN.md.
//
// Usage:
//
//	experiments               # run everything
//	experiments -exp fig15    # one experiment
//	experiments -fast         # smaller runs (CI-friendly)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/securemem/morphtree/internal/sim"
)

var experimentOrder = []string{
	"table1", "table2", "fig1", "fig17", "table3",
	"fig6", "fig10", "fig7", "fig11", "fig14",
	"fig5", "fig15", "fig16", "fig18", "fig19", "fig20", "dos", "related", "scaling",
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, or one of "+strings.Join(experimentOrder, ","))
	fast := flag.Bool("fast", false, "use shorter runs (less stable averages)")
	warm := flag.Uint64("warm", 0, "override warmup accesses per core")
	measure := flag.Uint64("measure", 0, "override measured accesses per core")
	seed := flag.Uint64("seed", 1, "workload generator seed")
	flag.Parse()

	opt := sim.DefaultRunOptions()
	if *fast {
		opt.WarmupAccesses = 120_000
		opt.MeasureAccesses = 120_000
	}
	if *warm != 0 {
		opt.WarmupAccesses = *warm
	}
	if *measure != 0 {
		opt.MeasureAccesses = *measure
	}
	opt.Seed = *seed

	r := newRunner(opt)
	fns := map[string]func(*runner){
		"table1":  table1,
		"table2":  table2,
		"fig1":    fig1,
		"fig17":   fig17,
		"table3":  table3,
		"fig6":    fig6,
		"fig10":   fig10,
		"fig7":    fig7,
		"fig11":   fig11,
		"fig14":   fig14,
		"fig5":    fig5,
		"fig15":   fig15,
		"fig16":   fig16,
		"fig18":   fig18,
		"fig19":   fig19,
		"fig20":   fig20,
		"dos":     dos,
		"related": related,
		"scaling": scaling,
	}
	if *exp == "all" {
		for _, name := range experimentOrder {
			fns[name](r)
		}
		return
	}
	fn, ok := fns[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose all or one of %s\n",
			*exp, strings.Join(experimentOrder, ","))
		os.Exit(2)
	}
	fn(r)
}

// header prints an experiment banner.
func header(title string) {
	fmt.Println()
	fmt.Println("=== " + title + " ===")
}
