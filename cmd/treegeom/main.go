// Command treegeom prints integrity-tree geometry: per-level sizes, tree
// height, and storage overheads (Figures 1 and 17, Table III) for any
// memory capacity and counter organization.
//
// Usage:
//
//	treegeom                       # the paper's four designs at 16GB
//	treegeom -mem 64               # same designs at 64GB
//	treegeom -enc 128 -tree 128    # a custom uniform design
//	treegeom -enc 64 -tree 32,16   # a custom variable-arity schedule
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/securemem/morphtree/internal/tree"
)

func main() {
	memGB := flag.Uint64("mem", 16, "protected memory capacity in GB")
	enc := flag.Int("enc", 0, "encryption-counter arity for a custom design (0 = show the paper's designs)")
	treeArities := flag.String("tree", "", "comma-separated tree arity schedule for a custom design")
	flag.Parse()

	memBytes := *memGB << 30
	if *enc != 0 || *treeArities != "" {
		arities, err := parseArities(*treeArities)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		show(fmt.Sprintf("custom (%d-ary enc, tree %v)", *enc, arities), memBytes, *enc, arities)
		return
	}
	show("Commercial-SGX", memBytes, 8, []int{8})
	show("VAULT", memBytes, 64, []int{32, 16})
	show("SC-64", memBytes, 64, []int{64})
	show("MorphCtr-128", memBytes, 128, []int{128})
}

func parseArities(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("treegeom: -tree is required for a custom design")
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("treegeom: bad arity %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func show(name string, memBytes uint64, encArity int, arities []int) {
	g, err := tree.New(memBytes, encArity, arities)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("%s @ %s\n", name, tree.FormatBytes(memBytes))
	fmt.Printf("  encryption counters: %10s  (%.3f%% of memory)\n",
		tree.FormatBytes(g.EncCounterBytes()), g.EncOverheadPercent())
	for _, l := range g.Levels {
		fmt.Printf("  tree level %d (%3d-ary): %10s\n", l.Level, l.Arity, tree.FormatBytes(l.Bytes))
	}
	fmt.Printf("  integrity tree total: %10s  (%.4f%% of memory, %d levels)\n\n",
		tree.FormatBytes(g.TreeBytes()), g.TreeOverheadPercent(), g.NumLevels())
}
