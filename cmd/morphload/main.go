// Command morphload is a closed-loop load generator for morphserve: N
// client goroutines drive concurrent READ/WRITE traffic over the wire
// protocol, each verifying its own read-back contents against what it
// wrote, and the run ends with a report of throughput, latency
// percentiles, verified-integrity counts, resilience counters (retries,
// reconnects, sheds absorbed), and the server's aggregated engine stats
// (the paper's overflow / rebase / re-encryption metrics), written to a
// JSON file.
//
// Clients are wire.ResilientClients: transient faults — resets, stalls,
// BUSY sheds from admission control — are retried with backoff instead
// of killing the closed loop, and a write whose outcome a fault left
// unknown is tracked as indeterminate so read-back verification accepts
// either the old or the possibly-applied value rather than reporting a
// false mismatch.
//
// Usage:
//
//	morphload -addr 127.0.0.1:7443 -clients 8 -duration 5s -out BENCH_serve.json
//	morphload -tamper    # also inject a tamper and require fail-closed detection
package main

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/proof"
	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/shard"
	"github.com/securemem/morphtree/internal/wire"
)

const lineBytes = secmem.LineBytes

type clientResult struct {
	reads, writes   uint64
	verifiedReads   uint64 // reads whose contents matched expectations
	mismatches      uint64 // silent corruption: wrong contents, no error
	integrityErrors uint64 // *secmem.IntegrityError during normal traffic
	otherErrors     uint64
	proofReads      uint64 // reads done as client-verified PROOF fetches
	proofFailures   uint64 // proofs that failed client-side verification
	latencies       []time.Duration
	readLats        []time.Duration // plain READ only (overhead baseline)
	proofLats       []time.Duration // PROOF fetch + client-side verify
	firstErr        error
	net             wire.ResilientStats
}

// auditSetup is the client-side verification context -audit mode threads
// through every worker: the deployment parameters, the data-owner master
// key, and the server's signing key fetched once up front.
type auditSetup struct {
	params proof.Params
	key    []byte
	pub    ed25519.PublicKey
}

// report is the BENCH_serve.json schema.
type report struct {
	Addr          string  `json:"addr"`
	Clients       int     `json:"clients"`
	DurationSec   float64 `json:"duration_s"`
	SpanBytes     uint64  `json:"span_bytes"`
	WriteFraction float64 `json:"write_fraction"`

	Ops           uint64  `json:"ops"`
	Reads         uint64  `json:"reads"`
	Writes        uint64  `json:"writes"`
	ThroughputOps float64 `json:"throughput_ops_s"`

	LatencyUS map[string]float64 `json:"latency_us"`

	VerifiedReads   uint64 `json:"verified_reads"`
	Mismatches      uint64 `json:"read_mismatches"`
	IntegrityErrors uint64 `json:"integrity_errors"`
	OtherErrors     uint64 `json:"other_errors"`
	VerifyOK        bool   `json:"verify_ok"`

	// Resilience counters summed over all clients: how much transient
	// trouble the closed loop absorbed without dying.
	Retries    uint64 `json:"retries"`
	Reconnects uint64 `json:"reconnects"`
	Sheds      uint64 `json:"sheds"`

	TamperAttempted bool `json:"tamper_attempted"`
	TamperDetected  bool `json:"tamper_detected"`

	// -audit mode: every AuditEvery'th read is a PROOF fetch verified
	// client-side against the attested epoch root; ProofOverhead is the
	// latency ratio of a verified read to a plain read at matching
	// percentiles.
	Audit          bool               `json:"audit"`
	AuditEvery     int                `json:"audit_every,omitempty"`
	ProofReads     uint64             `json:"proof_reads,omitempty"`
	ProofFailures  uint64             `json:"proof_failures,omitempty"`
	ProofLatencyUS map[string]float64 `json:"proof_latency_us,omitempty"`
	ProofOverheadX map[string]float64 `json:"proof_overhead_x,omitempty"`

	ServerStats secmem.Stats `json:"server_stats"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7443", "morphserve address")
	clients := flag.Int("clients", 8, "concurrent client goroutines")
	duration := flag.Duration("duration", 5*time.Second, "load phase length")
	span := flag.Uint64("span", 1<<20, "address span to exercise (must fit the server's -mem)")
	writeFrac := flag.Float64("writes", 0.5, "fraction of ops that are writes")
	seed := flag.Int64("seed", 1, "per-client RNG seed base")
	timeout := flag.Duration("timeout", 10*time.Second, "per-attempt deadline")
	retries := flag.Int("retries", 8, "attempts per op before giving up (resilient client)")
	retryWrites := flag.Bool("retry-writes", true, "retry writes whose outcome a transport fault left unknown (safe here: retries rewrite identical content)")
	tamper := flag.Bool("tamper", false, "after the load phase, inject a tamper via the wire TAMPER op and require an IntegrityError (server must run with -tamper)")
	audit := flag.Bool("audit", false, "verify every -audit-every'th read client-side via the PROOF op against the attested epoch root, measuring verified-read overhead")
	auditEvery := flag.Int("audit-every", 4, "with -audit: make every Nth read a client-verified PROOF fetch (N >= 1; 1 verifies every read)")
	org := flag.String("org", "morph128", "server's counter organization (used with -audit)")
	mem := flag.Uint64("mem", 4<<20, "server's protected capacity in bytes (used with -audit)")
	keyHex := flag.String("key", "", "AES master key in hex (used with -audit; default is the fixed demo key)")
	out := flag.String("out", "BENCH_serve.json", "report file")
	reportEvery := flag.Duration("report", 0, "periodic one-line progress interval during the load phase (0 disables): qps, p50/p99, retries, sheds from live obs counters")
	mix := flag.String("mix", "", "adversarial multi-tenant mode: path to the server's -tenants config; runs a solo victim baseline then victim vs greedy aggressor concurrently and writes a BENCH_tenant.json-style report to -out")
	victimID := flag.String("victim", "victim", "with -mix: tenant id of the protected small tenant")
	aggressorID := flag.String("aggressor", "greedy", "with -mix: tenant id of the greedy tenant")
	flag.Parse()

	if *clients < 1 || *span/lineBytes < uint64(*clients) {
		log.Fatalf("morphload: need at least one line per client (span %d, clients %d)", *span, *clients)
	}
	if *audit && *auditEvery < 1 {
		log.Fatalf("morphload: -audit-every must be >= 1 (got %d)", *auditEvery)
	}
	if *mix != "" {
		runMix(mixConfig{
			addr: *addr, configPath: *mix, victim: *victimID, aggressor: *aggressorID,
			clients: *clients, duration: *duration, span: *span, writeFrac: *writeFrac,
			seed: *seed, timeout: *timeout, retries: *retries, retryWrites: *retryWrites,
			out: *out,
		})
		return
	}

	// Live instruments shared by every client: op latencies plus the
	// resilience counters the wire layer mirrors (wire.retries / sheds /
	// reconnects). The -report ticker deltas them for interval rates.
	reg := obs.NewRegistry()
	ins := loadInstruments{
		readLat:  reg.Histogram("load.read.latency"),
		writeLat: reg.Histogram("load.write.latency"),
	}

	// -audit: fetch the server's signing key once up front; every worker
	// verifies proofs against the same pinned key.
	var as *auditSetup
	if *audit {
		key := []byte("0123456789abcdef")
		if *keyHex != "" {
			k, err := hex.DecodeString(*keyHex)
			if err != nil {
				log.Fatalf("morphload: -key: %v", err)
			}
			key = k
		}
		enc, tree, err := shard.Organization(*org)
		if err != nil {
			log.Fatalf("morphload: %v", err)
		}
		boot := wire.NewResilient(wire.ResilientConfig{Addr: *addr, Timeout: *timeout, MaxAttempts: *retries, Seed: *seed - 2})
		ri, err := boot.Root()
		boot.Close()
		if err != nil {
			log.Fatalf("morphload: -audit: fetch signing key: %v", err)
		}
		as = &auditSetup{
			params: proof.Params{MemoryBytes: *mem, Enc: enc, Tree: tree},
			key:    key,
			pub:    ed25519.PublicKey(ri.Pub),
		}
		ins.proofLat = reg.Histogram("load.proof.latency")
	}

	// Each client owns a disjoint contiguous range of lines, so it can
	// verify every read against exactly what it last wrote there.
	results := make([]clientResult, *clients)
	linesPerClient := *span / lineBytes / uint64(*clients)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := wire.NewResilient(wire.ResilientConfig{
				Addr:        *addr,
				Timeout:     *timeout,
				MaxAttempts: *retries,
				RetryWrites: *retryWrites,
				Seed:        *seed + int64(c),
				Obs:         reg,
			})
			defer cl.Close()
			results[c] = runClient(cl, deadline, rand.New(rand.NewSource(*seed+int64(c))),
				uint64(c)*linesPerClient*lineBytes, linesPerClient, *writeFrac, ins, as, *auditEvery, false)
		}(c)
	}
	stopRep := make(chan struct{})
	var repWG sync.WaitGroup
	if *reportEvery > 0 {
		repWG.Add(1)
		go func() {
			defer repWG.Done()
			progressReporter(reg, *reportEvery, stopRep)
		}()
	}
	wg.Wait()
	close(stopRep)
	repWG.Wait()

	rep := report{
		Addr:          *addr,
		Clients:       *clients,
		DurationSec:   duration.Seconds(),
		SpanBytes:     *span,
		WriteFraction: *writeFrac,
		LatencyUS:     map[string]float64{},
	}
	rep.Audit = *audit
	if *audit {
		rep.AuditEvery = *auditEvery
	}
	var all, plainReads, proofReads []time.Duration
	for c := range results {
		r := &results[c]
		rep.Reads += r.reads
		rep.Writes += r.writes
		rep.VerifiedReads += r.verifiedReads
		rep.Mismatches += r.mismatches
		rep.IntegrityErrors += r.integrityErrors
		rep.OtherErrors += r.otherErrors
		rep.ProofReads += r.proofReads
		rep.ProofFailures += r.proofFailures
		rep.Retries += r.net.Retries
		rep.Reconnects += r.net.Reconnects
		rep.Sheds += r.net.Sheds
		all = append(all, r.latencies...)
		plainReads = append(plainReads, r.readLats...)
		proofReads = append(proofReads, r.proofLats...)
		if r.firstErr != nil {
			log.Printf("morphload: client %d: first error: %v", c, r.firstErr)
		}
	}
	rep.Ops = rep.Reads + rep.Writes
	rep.ThroughputOps = float64(rep.Ops) / duration.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for _, p := range []struct {
		name string
		q    float64
	}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}, {"max", 1.0}} {
		rep.LatencyUS[p.name] = float64(percentile(all, p.q)) / float64(time.Microsecond)
	}
	if *audit {
		rep.ProofLatencyUS = map[string]float64{}
		rep.ProofOverheadX = map[string]float64{}
		sort.Slice(plainReads, func(i, j int) bool { return plainReads[i] < plainReads[j] })
		sort.Slice(proofReads, func(i, j int) bool { return proofReads[i] < proofReads[j] })
		for _, p := range []struct {
			name string
			q    float64
		}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
			pd := percentile(proofReads, p.q)
			rep.ProofLatencyUS[p.name] = float64(pd) / float64(time.Microsecond)
			if rd := percentile(plainReads, p.q); rd > 0 {
				rep.ProofOverheadX[p.name] = float64(pd) / float64(rd)
			}
		}
	}

	// Control connection: server-side full verification and final stats.
	ctl := wire.NewResilient(wire.ResilientConfig{
		Addr: *addr, Timeout: *timeout, MaxAttempts: *retries, Seed: *seed - 1,
	})
	defer ctl.Close()
	if err := ctl.Verify(); err != nil {
		log.Printf("morphload: VERIFY failed: %v", err)
	} else {
		rep.VerifyOK = true
	}

	if *tamper {
		rep.TamperAttempted = true
		rep.TamperDetected = injectTamper(ctl)
	}

	if st, err := ctl.Stats(); err != nil {
		log.Printf("morphload: STATS failed: %v", err)
	} else {
		rep.ServerStats = st
	}

	if err := writeReport(*out, rep); err != nil {
		log.Fatalf("morphload: %v", err)
	}
	fmt.Printf("morphload: %d ops in %.1fs (%.0f ops/s), p50=%.0fus p99=%.0fus; %d verified reads, %d mismatches, %d integrity errors, %d retries, %d reconnects, %d sheds, verify_ok=%v",
		rep.Ops, rep.DurationSec, rep.ThroughputOps, rep.LatencyUS["p50"], rep.LatencyUS["p99"],
		rep.VerifiedReads, rep.Mismatches, rep.IntegrityErrors, rep.Retries, rep.Reconnects, rep.Sheds, rep.VerifyOK)
	if rep.TamperAttempted {
		fmt.Printf(", tamper_detected=%v", rep.TamperDetected)
	}
	if rep.Audit {
		fmt.Printf("; %d proof-verified reads (%d failures), proof p50=%.0fus (%.2fx plain read)",
			rep.ProofReads, rep.ProofFailures, rep.ProofLatencyUS["p50"], rep.ProofOverheadX["p50"])
	}
	fmt.Println()
	if rep.Mismatches > 0 || rep.IntegrityErrors > 0 || rep.OtherErrors > 0 || !rep.VerifyOK ||
		(rep.TamperAttempted && !rep.TamperDetected) ||
		(rep.Audit && (rep.ProofFailures > 0 || rep.ProofReads == 0)) {
		os.Exit(1)
	}
}

// loadInstruments are the shared live histograms every client records
// into (histograms are multi-recorder safe).
type loadInstruments struct {
	readLat, writeLat *obs.Histogram
	proofLat          *obs.Histogram // -audit only, else nil (nil-safe)
}

// progressReporter prints one line per tick with interval (not cumulative)
// rates, computed by delta-ing registry snapshots.
func progressReporter(reg *obs.Registry, every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	start := time.Now()
	prev := reg.Snapshot()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			cur := reg.Snapshot()
			rd := cur.Histograms["load.read.latency"].Delta(prev.Histograms["load.read.latency"])
			wd := cur.Histograms["load.write.latency"].Delta(prev.Histograms["load.write.latency"])
			all := rd
			all.Merge(wd)
			secs := every.Seconds()
			fmt.Printf("morphload: t=%4.0fs %7.0f ops/s (r %.0f/s, w %.0f/s)  p50=%s p99=%s  retries=%d sheds=%d reconnects=%d\n",
				time.Since(start).Seconds(),
				float64(all.Count)/secs, float64(rd.Count)/secs, float64(wd.Count)/secs,
				time.Duration(all.P50).Round(time.Microsecond), time.Duration(all.P99).Round(time.Microsecond),
				cur.Counters["wire.retries"]-prev.Counters["wire.retries"],
				cur.Counters["wire.sheds"]-prev.Counters["wire.sheds"],
				cur.Counters["wire.reconnects"]-prev.Counters["wire.reconnects"])
			prev = cur
		}
	}
}

// runClient is one closed-loop worker: pick a random owned line, write a
// deterministic pattern or read back and verify, until the deadline. The
// resilient client absorbs transient faults; an op that still fails
// after its retry budget is counted and the loop keeps going.
//
// writeFirst makes a worker write each line before ever reading it. The
// tenant mix mode needs this: under per-tenant key domains an untouched
// line still belongs to the default domain, so reading it before claiming
// it with a write is (correctly) denied as an integrity violation.
func runClient(cl *wire.ResilientClient, deadline time.Time, rng *rand.Rand, base uint64, lines uint64, writeFrac float64, ins loadInstruments, as *auditSetup, auditEvery int, writeFirst bool) clientResult {
	var res clientResult
	// seqs holds the last sequence number acknowledged per address; maybe
	// holds every sequence a finally-failed write may or may not have
	// applied (no request IDs, so such a request can even be a zombie that
	// lands later). A line with indeterminate writes is quarantined — only
	// read from then on — and reads accept the acked value or any
	// indeterminate one.
	seqs := make(map[uint64]uint64, lines)
	maybe := make(map[uint64][]uint64, 4)
	acceptable := func(got []byte, a uint64) bool {
		if s, ok := seqs[a]; ok {
			if bytes.Equal(got, fill(a, s)) {
				return true
			}
		} else if bytes.Equal(got, make([]byte, lineBytes)) {
			return true
		}
		for _, m := range maybe[a] {
			if bytes.Equal(got, fill(a, m)) {
				return true
			}
		}
		return false
	}
	var ie *secmem.IntegrityError
	for time.Now().Before(deadline) {
		a := base + uint64(rng.Int63n(int64(lines)))*lineBytes
		writeIt := rng.Float64() < writeFrac
		if writeFirst {
			if _, written := seqs[a]; !written {
				writeIt = true
			}
		}
		if writeIt && len(maybe[a]) == 0 {
			seq := seqs[a] + 1
			start := time.Now()
			err := cl.Write(a, fill(a, seq))
			dur := time.Since(start)
			ins.writeLat.Record(dur)
			res.latencies = append(res.latencies, dur)
			if err != nil {
				recordErr(&res, err, &ie)
				maybe[a] = append(maybe[a], seq)
				continue
			}
			seqs[a] = seq
			res.writes++
		} else if as != nil && auditEvery > 0 && res.reads%uint64(auditEvery) == uint64(auditEvery)-1 {
			// Verified read: fetch the full witness and rerun the tree walk
			// client-side, timing the whole thing so the overhead ratio
			// compares like with like (round trip + verification vs round
			// trip alone).
			start := time.Now()
			got, err := proofRead(cl, a, as)
			dur := time.Since(start)
			ins.proofLat.Record(dur)
			res.latencies = append(res.latencies, dur)
			res.proofLats = append(res.proofLats, dur)
			if err != nil {
				recordErr(&res, err, &ie)
				var me *proof.MismatchError
				if errors.As(err, &me) {
					res.proofFailures++
				}
				continue
			}
			res.reads++
			res.proofReads++
			if acceptable(got, a) {
				res.verifiedReads++
			} else {
				res.mismatches++
			}
		} else {
			start := time.Now()
			got, err := cl.Read(a)
			dur := time.Since(start)
			ins.readLat.Record(dur)
			res.latencies = append(res.latencies, dur)
			res.readLats = append(res.readLats, dur)
			if err != nil {
				recordErr(&res, err, &ie)
				continue
			}
			res.reads++
			if acceptable(got, a) {
				res.verifiedReads++
			} else {
				res.mismatches++
			}
		}
	}
	res.net = cl.Counters()
	return res
}

// proofRead is the -audit read path: fetch the PROOF witness and verify
// it client-side, returning the recovered plaintext line. The server's
// claimed shard count is adopted per call (the attestation binds it:
// lying about it changes every digest), so auditSetup stays immutable and
// race-free across workers.
func proofRead(cl *wire.ResilientClient, addr uint64, as *auditSetup) ([]byte, error) {
	p, err := cl.Proof(addr)
	if err != nil {
		return nil, err
	}
	params := as.params
	if params.Shards == 0 {
		params.Shards = int(p.Shards)
	}
	return p.Verify(params, as.key, as.pub)
}

func recordErr(res *clientResult, err error, ie **secmem.IntegrityError) {
	if res.firstErr == nil {
		res.firstErr = err
	}
	if errors.As(err, ie) {
		res.integrityErrors++
	} else {
		res.otherErrors++
	}
}

// injectTamper writes a line, flips a stored ciphertext bit through the
// wire TAMPER op, and requires the following read to fail closed with a
// typed IntegrityError. It runs after VERIFY so the report's verify_ok
// reflects the untampered memory.
func injectTamper(ctl *wire.ResilientClient) bool {
	const victim = 0
	if err := ctl.Write(victim, fill(victim, 0xA11CE)); err != nil {
		log.Printf("morphload: tamper setup write: %v", err)
		return false
	}
	if err := ctl.Tamper(victim); err != nil {
		log.Printf("morphload: TAMPER op: %v", err)
		return false
	}
	_, err := ctl.Read(victim)
	var ie *secmem.IntegrityError
	if !errors.As(err, &ie) {
		log.Printf("morphload: tampered read returned %v, want *secmem.IntegrityError", err)
		return false
	}
	log.Printf("morphload: tamper detected as expected: %v", ie)
	return true
}

// fill produces the deterministic line contents for (addr, seq); readers
// recompute it to verify integrity end to end.
func fill(addr, seq uint64) []byte {
	line := make([]byte, lineBytes)
	for i := 0; i < lineBytes; i += 16 {
		binary.LittleEndian.PutUint64(line[i:], addr^seq)
		binary.LittleEndian.PutUint64(line[i+8:], seq*0x9e3779b97f4a7c15+uint64(i))
	}
	return line
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func writeReport(path string, rep report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
