package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/tenant"
	"github.com/securemem/morphtree/internal/wire"
)

// mixConfig carries the -mix flags into the adversarial-mix driver.
type mixConfig struct {
	addr        string
	configPath  string // the server's -tenants file (has the secrets)
	victim      string
	aggressor   string
	clients     int           // per tenant
	duration    time.Duration // per phase
	span        uint64
	writeFrac   float64
	seed        int64
	timeout     time.Duration
	retries     int
	retryWrites bool
	out         string
}

// mixReport is the BENCH_tenant.json schema: did weighted fair admission
// protect the small tenant's tail latency while the greedy tenant was
// shed, and did key-domain separation deny the cross-tenant read.
type mixReport struct {
	Addr      string  `json:"addr"`
	Victim    string  `json:"victim"`
	Aggressor string  `json:"aggressor"`
	Clients   int     `json:"clients_per_tenant"`
	PhaseSec  float64 `json:"phase_duration_s"`
	SpanBytes uint64  `json:"span_bytes"`

	// Phase 1: the victim alone (its latency baseline).
	SoloOps       uint64             `json:"solo_ops"`
	SoloLatencyUS map[string]float64 `json:"solo_latency_us"`

	// Phase 2: victim and aggressor concurrently.
	MixVictimOps    uint64             `json:"mix_victim_ops"`
	MixLatencyUS    map[string]float64 `json:"mix_victim_latency_us"`
	MixAggressorOps uint64             `json:"mix_aggressor_ops"`

	// DegradationX is mixed-phase victim p99 over solo p99: the isolation
	// headline (must stay under 2x for the run to pass).
	DegradationX   float64 `json:"victim_p99_degradation_x"`
	AggressorSheds uint64  `json:"aggressor_sheds"`
	VictimSheds    uint64  `json:"victim_sheds"`

	VictimMismatches      uint64 `json:"victim_mismatches"`
	VictimIntegrityErrors uint64 `json:"victim_integrity_errors"`
	VictimOtherErrors     uint64 `json:"victim_other_errors"`

	// CrossTenantDenied: a read of the victim's line over an
	// aggressor-bound connection failed with a typed IntegrityError
	// (key-domain separation, checked end to end over the wire).
	CrossTenantDenied bool `json:"cross_tenant_denied"`

	MixOK bool `json:"mix_ok"`
}

// runMix drives the adversarial tenant mix: a solo victim baseline phase,
// then the victim and a greedy aggressor concurrently on disjoint address
// partitions, then a cross-tenant read probe. It writes the report and
// exits non-zero if isolation failed (victim p99 degraded 2x or more, the
// aggressor was never shed, or the cross-tenant read was not denied).
func runMix(cfg mixConfig) {
	reg, err := tenant.LoadConfig(cfg.configPath)
	if err != nil {
		log.Fatalf("morphload: -mix: %v", err)
	}
	vSpec, ok := reg.Spec(cfg.victim)
	if !ok {
		log.Fatalf("morphload: -mix: victim tenant %q not in %s", cfg.victim, cfg.configPath)
	}
	aSpec, ok := reg.Spec(cfg.aggressor)
	if !ok {
		log.Fatalf("morphload: -mix: aggressor tenant %q not in %s", cfg.aggressor, cfg.configPath)
	}

	// Disjoint partitions, so read-back verification stays exact per phase:
	// victim solo gets [0, span/4), victim mixed gets [span/4, span/2), the
	// aggressor gets [span/2, span). Separate victim partitions per phase
	// keep phase 2's fresh write-set tracking honest.
	quarterLines := cfg.span / 4 / lineBytes
	halfLines := cfg.span / 2 / lineBytes
	if quarterLines < uint64(cfg.clients) {
		log.Fatalf("morphload: -mix: span %d too small for %d clients per tenant (need a line per client per quarter)", cfg.span, cfg.clients)
	}

	rep := mixReport{
		Addr: cfg.addr, Victim: cfg.victim, Aggressor: cfg.aggressor,
		Clients: cfg.clients, PhaseSec: cfg.duration.Seconds(), SpanBytes: cfg.span,
	}

	// Phase 1: victim alone.
	fmt.Printf("morphload: mix phase 1: tenant %q solo for %v\n", cfg.victim, cfg.duration)
	soloDeadline := time.Now().Add(cfg.duration)
	solo := runTenantPhase(cfg, vSpec, 0, quarterLines/uint64(cfg.clients), soloDeadline, 0)
	var soloLats []time.Duration
	for i := range solo {
		r := &solo[i]
		rep.SoloOps += r.reads + r.writes
		rep.VictimMismatches += r.mismatches
		rep.VictimIntegrityErrors += r.integrityErrors
		rep.VictimOtherErrors += r.otherErrors
		soloLats = append(soloLats, r.latencies...)
	}
	rep.SoloLatencyUS = latencyUS(soloLats)

	// Phase 2: victim and aggressor concurrently, one deadline.
	fmt.Printf("morphload: mix phase 2: tenant %q vs %q for %v\n", cfg.victim, cfg.aggressor, cfg.duration)
	mixDeadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	var vRes, aRes []clientResult
	wg.Add(2)
	go func() {
		defer wg.Done()
		vRes = runTenantPhase(cfg, vSpec, cfg.span/4, quarterLines/uint64(cfg.clients), mixDeadline, 1000)
	}()
	go func() {
		defer wg.Done()
		aRes = runTenantPhase(cfg, aSpec, cfg.span/2, halfLines/uint64(cfg.clients), mixDeadline, 2000)
	}()
	wg.Wait()
	var mixLats []time.Duration
	for i := range vRes {
		r := &vRes[i]
		rep.MixVictimOps += r.reads + r.writes
		rep.VictimSheds += r.net.Sheds
		rep.VictimMismatches += r.mismatches
		rep.VictimIntegrityErrors += r.integrityErrors
		rep.VictimOtherErrors += r.otherErrors
		mixLats = append(mixLats, r.latencies...)
	}
	for i := range aRes {
		r := &aRes[i]
		rep.MixAggressorOps += r.reads + r.writes
		rep.AggressorSheds += r.net.Sheds
	}
	rep.MixLatencyUS = latencyUS(mixLats)
	if solo := rep.SoloLatencyUS["p99"]; solo > 0 {
		rep.DegradationX = rep.MixLatencyUS["p99"] / solo
	}

	// Phase 3: cross-tenant probe — the victim writes a line, the
	// aggressor's connection reads the same address. The line's MAC is
	// bound to the victim's key domain, so the aggressor must get a typed
	// IntegrityError, the same fail-closed answer tampering gets.
	denied, perr := crossTenantProbe(cfg, vSpec, aSpec)
	rep.CrossTenantDenied = denied
	if perr != nil {
		log.Printf("morphload: mix: cross-tenant probe: %v", perr)
	}

	rep.MixOK = rep.DegradationX < 2.0 &&
		rep.AggressorSheds > 0 &&
		rep.CrossTenantDenied &&
		rep.VictimMismatches == 0 && rep.VictimIntegrityErrors == 0

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("morphload: -mix: %v", err)
	}
	if err := os.WriteFile(cfg.out, append(b, '\n'), 0o644); err != nil {
		log.Fatalf("morphload: -mix: %v", err)
	}
	fmt.Printf("morphload: mix: victim p99 solo=%.0fus mixed=%.0fus (%.2fx), aggressor ops=%d sheds=%d, victim sheds=%d, cross_tenant_denied=%v, mix_ok=%v\n",
		rep.SoloLatencyUS["p99"], rep.MixLatencyUS["p99"], rep.DegradationX,
		rep.MixAggressorOps, rep.AggressorSheds, rep.VictimSheds, rep.CrossTenantDenied, rep.MixOK)
	if !rep.MixOK {
		os.Exit(1)
	}
}

// runTenantPhase runs cfg.clients closed-loop workers bound to one tenant
// over one address partition until the deadline. Each worker owns a
// disjoint slice of lines, so read-back verification stays exact.
func runTenantPhase(cfg mixConfig, spec tenant.Spec, base uint64, linesPer uint64, deadline time.Time, seedOff int64) []clientResult {
	results := make([]clientResult, cfg.clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := wire.NewResilient(wire.ResilientConfig{
				Addr:         cfg.addr,
				Timeout:      cfg.timeout,
				MaxAttempts:  cfg.retries,
				RetryWrites:  cfg.retryWrites,
				Seed:         cfg.seed + seedOff + int64(c),
				TenantID:     spec.ID,
				TenantSecret: spec.Secret,
			})
			defer cl.Close()
			results[c] = runClient(cl, deadline, rand.New(rand.NewSource(cfg.seed+seedOff+int64(c))),
				base+uint64(c)*linesPer*lineBytes, linesPer, cfg.writeFrac, loadInstruments{}, nil, 0, true)
		}(c)
	}
	wg.Wait()
	return results
}

// crossTenantProbe writes a line as the victim and reads the same address
// over an aggressor-bound connection, reporting whether the read was
// denied with a typed *secmem.IntegrityError.
func crossTenantProbe(cfg mixConfig, vSpec, aSpec tenant.Spec) (bool, error) {
	const probeAddr = 0 // victim solo partition
	vc := wire.NewResilient(wire.ResilientConfig{
		Addr: cfg.addr, Timeout: cfg.timeout, MaxAttempts: cfg.retries,
		Seed: cfg.seed - 3, TenantID: vSpec.ID, TenantSecret: vSpec.Secret,
	})
	defer vc.Close()
	if err := vc.Write(probeAddr, fill(probeAddr, 0xC0FFEE)); err != nil {
		return false, fmt.Errorf("victim probe write: %w", err)
	}
	ac := wire.NewResilient(wire.ResilientConfig{
		Addr: cfg.addr, Timeout: cfg.timeout, MaxAttempts: cfg.retries,
		Seed: cfg.seed - 4, TenantID: aSpec.ID, TenantSecret: aSpec.Secret,
	})
	defer ac.Close()
	_, err := ac.Read(probeAddr)
	var ie *secmem.IntegrityError
	if errors.As(err, &ie) {
		return true, nil
	}
	return false, fmt.Errorf("cross-tenant read returned %v, want *secmem.IntegrityError", err)
}

// latencyUS summarizes a latency sample at the standard percentiles in
// microseconds (sorts its argument in place).
func latencyUS(lats []time.Duration) map[string]float64 {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	out := map[string]float64{}
	for _, p := range []struct {
		name string
		q    float64
	}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}, {"max", 1.0}} {
		out[p.name] = float64(percentile(lats, p.q)) / float64(time.Microsecond)
	}
	return out
}
