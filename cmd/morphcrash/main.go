// Command morphcrash is the durability layer's crash-injection harness. It
// builds a reference store under a seeded write workload, then — for a
// matrix of crash points — clones the data directory, performs the file
// surgery a kernel panic at that instant would leave behind, and recovers
// the clone, asserting the result byte-for-byte against a shadow model:
//
//   - append:   the WAL tail is cut at a random byte offset; exactly the
//     whole frames before the cut must survive, in order, and the recovery
//     must report a torn tail rather than an integrity violation.
//   - snapshot: the crash lands mid-checkpoint — next-epoch segments exist
//     and at most a partial snapshot temp file; recovery must fall back to
//     the previous epoch with nothing lost and sweep the stale files.
//   - truncate: the crash lands after the snapshot rename but before the
//     old epoch's files are unlinked; recovery must prefer the new epoch,
//     keep the full state, and finish the sweep.
//   - delta: the crash lands mid-delta-checkpoint — a partial (or empty)
//     delta temp file sits beside a committed chain; recovery must use the
//     chain head, replay only the post-delta tail, and sweep the temp.
//   - compact: the crash lands mid-compaction, either before the full
//     snapshot renamed (stale next-epoch segments + partial temp beside a
//     live delta chain) or after (the old chain's files resurrected beside
//     the committed epoch); recovery must pick the right head both times.
//
// Three tampering probes ride along: a flipped snapshot byte, a flipped
// delta-segment byte, and a flipped WAL payload byte with a recomputed CRC
// (an adversary, not a crash) must all surface as integrity errors at
// recovery, never as silent repairs.
//
// Two benchmarks complete the report: a recovery-time curve at two state
// sizes proving delta-chain recovery replays O(dirty tail) writes — not
// O(total history) — with at least a 5x wall-clock win at a small dirty
// fraction, and a write-latency comparison proving the background delta
// checkpointer adds no group-commit stall (p99 within 1.5x of the
// checkpoint-free run, or under an absolute no-stall floor).
//
// Results, plus a durable-on/off throughput comparison, are written as
// JSON (default BENCH_durable.json). Exit status is non-zero if any crash
// point recovers wrong, any tamper probe goes undetected, or either
// checkpoint gate fails.
//
// Usage:
//
//	morphcrash -points 24 -writes 600 -shards 4 -mem 262144 -seed 1 -out BENCH_durable.json
package main

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/securemem/morphtree/internal/ckpt"
	"github.com/securemem/morphtree/internal/durable"
	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/shard"
	"github.com/securemem/morphtree/internal/wal"
)

var demoKey = []byte("0123456789abcdef")

// shadowWrite is one acknowledged write in engine apply order, which the
// WAL-before-apply lock discipline guarantees is also WAL record order.
type shadowWrite struct {
	addr uint64
	line []byte
}

// trialResult is one crash point's outcome in the JSON report.
type trialResult struct {
	Stage     string `json:"stage"`
	Detail    string `json:"detail"`
	Recovered int    `json:"recovered_writes"`
	Expected  int    `json:"expected_writes"`
	TornTails int    `json:"torn_tails"`
	Pass      bool   `json:"pass"`
	Err       string `json:"error,omitempty"`
}

type tamperResult struct {
	Target   string `json:"target"`
	Detected bool   `json:"detected"`
	Err      string `json:"recovery_error"`
}

type benchResult struct {
	Mode        string  `json:"mode"`
	Writes      int     `json:"writes"`
	Seconds     float64 `json:"seconds"`
	WritesPerMs float64 `json:"writes_per_ms"`
}

// curvePoint is one state size on the recovery-time curve: the same
// workload recovered twice, once from a full WAL replay and once from a
// delta chain whose tail holds only the post-checkpoint dirty writes.
type curvePoint struct {
	MemBytes      uint64  `json:"mem_bytes"`
	Lines         int     `json:"lines"`
	BulkWrites    int     `json:"bulk_writes"`
	TailWrites    int     `json:"tail_writes"`
	FullReplayed  int     `json:"full_replayed_writes"`
	FullMillis    float64 `json:"full_replay_ms"`
	DeltaReplayed int     `json:"delta_replayed_writes"`
	DeltaMillis   float64 `json:"delta_recovery_ms"`
	Speedup       float64 `json:"speedup"`
	Pass          bool    `json:"pass"`
	Err           string  `json:"error,omitempty"`
}

// stallResult compares write p99 latency with and without the background
// delta checkpointer running — the stall-free claim, measured.
type stallResult struct {
	Writes    int     `json:"writes"`
	P99BaseUS float64 `json:"p99_no_ckpt_us"`
	P99CkptUS float64 `json:"p99_with_ckpt_us"`
	Deltas    uint64  `json:"deltas_cut"`
	Ratio     float64 `json:"ratio"`
	Pass      bool    `json:"pass"`
	Err       string  `json:"error,omitempty"`
}

type report struct {
	Config struct {
		Org    string `json:"org"`
		Shards int    `json:"shards"`
		Mem    uint64 `json:"mem_bytes"`
		Writes int    `json:"writes"`
		Points int    `json:"points"`
		Seed   int64  `json:"seed"`
	} `json:"config"`
	Crash    []trialResult  `json:"crash_matrix"`
	Tamper   []tamperResult `json:"tamper_probes"`
	Bench    []benchResult  `json:"throughput"`
	Curve    []curvePoint   `json:"recovery_curve"`
	Stall    stallResult    `json:"ckpt_stall"`
	Recovery struct {
		Records int     `json:"replayed_records"`
		Writes  int     `json:"replayed_writes"`
		Millis  float64 `json:"elapsed_ms"`
	} `json:"full_replay_recovery"`
	Pass bool `json:"pass"`
}

func main() {
	points := flag.Int("points", 24, "total crash points across the three stages")
	writes := flag.Int("writes", 600, "workload size in acknowledged writes")
	shards := flag.Int("shards", 4, "shard count")
	mem := flag.Uint64("mem", 256<<10, "protected capacity in bytes")
	org := flag.String("org", "morph128", "counter organization")
	seed := flag.Int64("seed", 1, "workload and crash-point seed")
	out := flag.String("out", "BENCH_durable.json", "JSON report path")
	flag.Parse()

	if err := run(*points, *writes, *shards, *mem, *org, *seed, *out); err != nil {
		log.Fatalf("morphcrash: %v", err)
	}
}

func shardConfig(org string, shards int, mem uint64) (shard.Config, error) {
	enc, tree, err := shard.Organization(org)
	if err != nil {
		return shard.Config{}, err
	}
	return shard.Config{
		Shards: shards,
		Mem: secmem.Config{
			MemoryBytes: mem,
			Enc:         enc,
			Tree:        tree,
			Key:         demoKey,
		},
	}, nil
}

func run(points, writes, shards int, mem uint64, org string, seed int64, out string) error {
	shcfg, err := shardConfig(org, shards, mem)
	if err != nil {
		return err
	}
	work, err := os.MkdirTemp("", "morphcrash-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	var rep report
	rep.Config.Org = org
	rep.Config.Shards = shards
	rep.Config.Mem = mem
	rep.Config.Writes = writes
	rep.Config.Points = points
	rep.Config.Seed = seed

	// ---- Reference run: seeded workload against a durable store. ----
	// NoAudit keeps every WAL frame at the fixed write size, which makes
	// the expected surviving-record count at a cut offset pure arithmetic
	// rather than a re-parse of the file under test.
	master := filepath.Join(work, "master")
	dm, _, err := durable.Open(shcfg, durable.Config{Dir: master, Sync: durable.SyncAlways, NoAudit: true})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	nlines := mem / durable.LineBytes
	journal := make([][]shadowWrite, shards) // per-shard, apply order
	for i := 0; i < writes; i++ {
		addr := (rng.Uint64() % nlines) * durable.LineBytes
		line := make([]byte, durable.LineBytes)
		binary.LittleEndian.PutUint64(line, rng.Uint64())
		binary.LittleEndian.PutUint64(line[8:], uint64(i))
		if err := dm.Write(addr, line); err != nil {
			return fmt.Errorf("workload write %d: %w", i, err)
		}
		si, _, err := dm.Sharded().Locate(addr)
		if err != nil {
			return err
		}
		journal[si] = append(journal[si], shadowWrite{addr, line})
	}
	if err := dm.Close(); err != nil {
		return err
	}

	// ---- Crash matrix. ----
	// Half the points cut the WAL tail; the rest split between the four
	// checkpoint-crash windows (full-snapshot rename, stale-epoch sweep,
	// mid-delta-write, mid-compaction).
	nAppend := points / 2
	rest := points - nAppend
	nSnap := rest / 4
	nTrunc := rest / 4
	nDelta := rest / 4
	nCompact := rest - nSnap - nTrunc - nDelta
	allPass := true

	for i := 0; i < nAppend; i++ {
		res := trialAppend(shcfg, work, master, journal, rng, i)
		allPass = allPass && res.Pass
		rep.Crash = append(rep.Crash, res)
	}
	for i := 0; i < nSnap; i++ {
		res := trialSnapshot(shcfg, work, master, journal, rng, i)
		allPass = allPass && res.Pass
		rep.Crash = append(rep.Crash, res)
	}
	for i := 0; i < nTrunc; i++ {
		res := trialTruncate(shcfg, work, master, journal, rng, i)
		allPass = allPass && res.Pass
		rep.Crash = append(rep.Crash, res)
	}
	for i := 0; i < nDelta; i++ {
		res := trialDelta(shcfg, work, master, journal, rng, i)
		allPass = allPass && res.Pass
		rep.Crash = append(rep.Crash, res)
	}
	for i := 0; i < nCompact; i++ {
		res := trialCompact(shcfg, work, master, journal, rng, i)
		allPass = allPass && res.Pass
		rep.Crash = append(rep.Crash, res)
	}

	// ---- Tamper probes: adversarial edits must NOT recover silently. ----
	for _, tr := range []tamperResult{
		probeTamperWAL(shcfg, work, master, rng),
		probeTamperSnapshot(shcfg, work, master),
		probeTamperDelta(shcfg, work, master, journal, rng),
	} {
		allPass = allPass && tr.Detected
		rep.Tamper = append(rep.Tamper, tr)
	}

	// ---- Full-replay recovery cost (the Anubis-style bound: work is ----
	// proportional to WAL length since the last checkpoint).
	{
		dir := filepath.Join(work, "recover-all")
		if err := cloneDir(master, dir); err != nil {
			return err
		}
		m2, info, err := durable.Open(shcfg, durable.Config{Dir: dir})
		if err != nil {
			return fmt.Errorf("full-replay recovery: %w", err)
		}
		rep.Recovery.Records = info.ReplayedRecords
		rep.Recovery.Writes = info.ReplayedWrites
		rep.Recovery.Millis = float64(info.Elapsed.Microseconds()) / 1000
		if err := m2.Close(); err != nil {
			return err
		}
	}

	// ---- Throughput: durable off vs each fsync policy. ----
	for _, mode := range []string{"volatile", "always", "interval", "none"} {
		br, err := benchMode(shcfg, work, mode, writes, seed)
		if err != nil {
			return err
		}
		rep.Bench = append(rep.Bench, br)
	}

	// ---- Recovery-time curve: delta chains must make recovery cost ----
	// track the dirty tail, not the total write history.
	curve, err := recoveryCurve(org, shards, seed, work)
	if err != nil {
		return err
	}
	for _, cp := range curve {
		allPass = allPass && cp.Pass
	}
	rep.Curve = curve

	// ---- Stall gate: the background checkpointer must not show up in ----
	// write tail latency.
	rep.Stall = benchStall(shcfg, work, seed)
	allPass = allPass && rep.Stall.Pass

	rep.Pass = allPass
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("morphcrash: %d crash points + %d tamper probes + %d curve points (stall ratio %.2f), pass=%v, report %s\n",
		len(rep.Crash), len(rep.Tamper), len(rep.Curve), rep.Stall.Ratio, rep.Pass, out)
	if !allPass {
		return fmt.Errorf("crash matrix failed; see %s", out)
	}
	return nil
}

// expectState replays per-shard journal prefixes into the final expected
// line contents: keep[s] records survive for shard s.
func expectState(journal [][]shadowWrite, keep []int) map[uint64][]byte {
	want := make(map[uint64][]byte)
	for s, js := range journal {
		for i := 0; i < keep[s]; i++ {
			want[js[i].addr] = js[i].line
		}
	}
	return want
}

// checkState reads every address either journal mentions and compares it
// with the shadow model (addresses whose surviving prefix never wrote them
// must read as never-written zeros).
func checkState(m *durable.Memory, journal [][]shadowWrite, want map[uint64][]byte) error {
	zeros := make([]byte, durable.LineBytes)
	seen := make(map[uint64]bool)
	for _, js := range journal {
		for _, w := range js {
			if seen[w.addr] {
				continue
			}
			seen[w.addr] = true
			got, err := m.Read(w.addr)
			if err != nil {
				return fmt.Errorf("read %#x: %w", w.addr, err)
			}
			exp, ok := want[w.addr]
			if !ok {
				exp = zeros
			}
			if string(got) != string(exp) {
				return fmt.Errorf("addr %#x diverged from shadow model", w.addr)
			}
		}
	}
	return m.VerifyAll()
}

func failTrial(stage, detail string, err error) trialResult {
	return trialResult{Stage: stage, Detail: detail, Pass: false, Err: err.Error()}
}

// trialAppend kills the store mid-WAL-append: the victim shard's segment
// is truncated at a random byte offset.
func trialAppend(shcfg shard.Config, work, master string, journal [][]shadowWrite, rng *rand.Rand, i int) trialResult {
	const stage = "append"
	dir := filepath.Join(work, fmt.Sprintf("append-%03d", i))
	if err := cloneDir(master, dir); err != nil {
		return failTrial(stage, "", err)
	}
	victim := rng.Intn(len(journal))
	seg := durable.SegmentPath(dir, 1, victim)
	st, err := os.Stat(seg)
	if err != nil {
		return failTrial(stage, "", err)
	}
	cut := rng.Int63n(st.Size() + 1)
	detail := fmt.Sprintf("shard %d cut at byte %d/%d", victim, cut, st.Size())
	if err := os.Truncate(seg, cut); err != nil {
		return failTrial(stage, detail, err)
	}

	// Fixed-size frames (NoAudit) make the survivor count arithmetic.
	keep := make([]int, len(journal))
	for s := range journal {
		keep[s] = len(journal[s])
	}
	keep[victim] = int(cut / wal.WriteFrameBytes)
	wantTorn := cut%wal.WriteFrameBytes != 0

	m, info, err := durable.Open(shcfg, durable.Config{Dir: dir})
	if err != nil {
		return failTrial(stage, detail, fmt.Errorf("recovery refused a pure crash artifact: %w", err))
	}
	defer func() { _ = m.Close() }() //morphlint:allow errdiscard trial teardown
	res := trialResult{
		Stage:     stage,
		Detail:    detail,
		Recovered: info.ReplayedWrites,
		Expected:  sum(keep),
		TornTails: info.TornTailCount(),
	}
	if info.ReplayedWrites != res.Expected {
		res.Err = fmt.Sprintf("replayed %d writes, want %d", info.ReplayedWrites, res.Expected)
		return res
	}
	if wantTorn != (info.TornTailCount() == 1) {
		res.Err = fmt.Sprintf("torn tails = %d, want torn=%v", info.TornTailCount(), wantTorn)
		return res
	}
	if err := checkState(m, journal, expectState(journal, keep)); err != nil {
		res.Err = err.Error()
		return res
	}
	res.Pass = true
	return res
}

// trialSnapshot kills the store mid-checkpoint, in the window where the
// next epoch's WAL segments exist but its snapshot has not renamed into
// place. Even-numbered points also leave a partial snapshot temp file.
func trialSnapshot(shcfg shard.Config, work, master string, journal [][]shadowWrite, rng *rand.Rand, i int) trialResult {
	const stage = "snapshot"
	dir := filepath.Join(work, fmt.Sprintf("snapshot-%03d", i))
	if err := cloneDir(master, dir); err != nil {
		return failTrial(stage, "", err)
	}
	for s := range journal {
		if err := os.WriteFile(durable.SegmentPath(dir, 2, s), nil, 0o644); err != nil {
			return failTrial(stage, "", err)
		}
	}
	detail := "stale epoch-2 segments"
	if i%2 == 0 {
		junk := make([]byte, rng.Intn(4096))
		rng.Read(junk)
		if err := os.WriteFile(durable.SnapshotPath(dir, 2)+".tmp", junk, 0o644); err != nil {
			return failTrial(stage, detail, err)
		}
		detail += fmt.Sprintf(" + %d-byte partial snapshot temp", len(junk))
	}

	keep := make([]int, len(journal))
	for s := range journal {
		keep[s] = len(journal[s])
	}
	m, info, err := durable.Open(shcfg, durable.Config{Dir: dir})
	if err != nil {
		return failTrial(stage, detail, fmt.Errorf("recovery refused a pure crash artifact: %w", err))
	}
	defer func() { _ = m.Close() }() //morphlint:allow errdiscard trial teardown
	res := trialResult{Stage: stage, Detail: detail, Recovered: info.ReplayedWrites, Expected: sum(keep), TornTails: info.TornTailCount()}
	if info.SnapshotSeq != 1 {
		res.Err = fmt.Sprintf("recovered from epoch %d, want fallback to 1", info.SnapshotSeq)
		return res
	}
	if info.ReplayedWrites != res.Expected {
		res.Err = fmt.Sprintf("replayed %d writes, want %d", info.ReplayedWrites, res.Expected)
		return res
	}
	if err := checkState(m, journal, expectState(journal, keep)); err != nil {
		res.Err = err.Error()
		return res
	}
	// The interrupted checkpoint's litter must be swept.
	for s := range journal {
		if _, err := os.Stat(durable.SegmentPath(dir, 2, s)); err == nil {
			res.Err = fmt.Sprintf("stale epoch-2 segment %d survived recovery", s)
			return res
		}
	}
	res.Pass = true
	return res
}

// trialTruncate kills the store after a checkpoint committed (snapshot
// renamed) but before the previous epoch's files were unlinked: recovery
// must prefer the new epoch and finish the sweep.
func trialTruncate(shcfg shard.Config, work, master string, journal [][]shadowWrite, rng *rand.Rand, i int) trialResult {
	const stage = "truncate"
	dir := filepath.Join(work, fmt.Sprintf("truncate-%03d", i))
	if err := cloneDir(master, dir); err != nil {
		return failTrial(stage, "", err)
	}
	// Preserve epoch 1's files, run a real checkpoint (which removes
	// them), then resurrect them — exactly what a crash between the
	// rename and the unlinks leaves on disk.
	saved := map[string][]byte{}
	names := []string{filepath.Base(durable.SnapshotPath(dir, 1))}
	for s := range journal {
		names = append(names, filepath.Base(durable.SegmentPath(dir, 1, s)))
	}
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return failTrial(stage, "", err)
		}
		saved[name] = data
	}
	m, _, err := durable.Open(shcfg, durable.Config{Dir: dir})
	if err != nil {
		return failTrial(stage, "", err)
	}
	if err := m.Checkpoint(); err != nil {
		return failTrial(stage, "", err)
	}
	if err := m.Close(); err != nil {
		return failTrial(stage, "", err)
	}
	for name, data := range saved {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return failTrial(stage, "", err)
		}
	}
	detail := fmt.Sprintf("epoch-1 snapshot + %d segments resurrected beside committed epoch 2", len(journal))

	keep := make([]int, len(journal))
	for s := range journal {
		keep[s] = len(journal[s])
	}
	m2, info, err := durable.Open(shcfg, durable.Config{Dir: dir})
	if err != nil {
		return failTrial(stage, detail, fmt.Errorf("recovery refused a pure crash artifact: %w", err))
	}
	defer func() { _ = m2.Close() }() //morphlint:allow errdiscard trial teardown
	res := trialResult{Stage: stage, Detail: detail, Recovered: info.ReplayedWrites, Expected: 0, TornTails: info.TornTailCount()}
	if info.SnapshotSeq != 2 {
		res.Err = fmt.Sprintf("recovered from epoch %d, want the committed 2", info.SnapshotSeq)
		return res
	}
	if info.ReplayedWrites != 0 {
		res.Err = fmt.Sprintf("replayed %d writes, want 0 after a committed checkpoint", info.ReplayedWrites)
		return res
	}
	if err := checkState(m2, journal, expectState(journal, keep)); err != nil {
		res.Err = err.Error()
		return res
	}
	if _, err := os.Stat(durable.SnapshotPath(dir, 1)); err == nil {
		res.Err = "resurrected epoch-1 snapshot survived recovery"
		return res
	}
	res.Pass = true
	return res
}

// buildDeltaStore clones master, reopens it, extends the workload by
// extra writes, cuts an incremental delta checkpoint (epoch 2 chained to
// base snapshot 1), writes a post-delta dirty tail, and closes. It returns
// the extended shadow journal. On disk: snapshot.1, delta 2←1 covering
// everything up to its cut, and WAL segments whose tail holds exactly the
// tail writes past the delta's covered LSN.
func buildDeltaStore(shcfg shard.Config, master, dir string, journal [][]shadowWrite, rng *rand.Rand, extra, tail int) ([][]shadowWrite, error) {
	if err := cloneDir(master, dir); err != nil {
		return nil, err
	}
	ext := make([][]shadowWrite, len(journal))
	for s := range journal {
		ext[s] = append([]shadowWrite(nil), journal[s]...)
	}
	m, _, err := durable.Open(shcfg, durable.Config{Dir: dir, Sync: durable.SyncAlways, NoAudit: true})
	if err != nil {
		return nil, err
	}
	nlines := shcfg.Mem.MemoryBytes / durable.LineBytes
	write := func(i int) error {
		addr := (rng.Uint64() % nlines) * durable.LineBytes
		line := make([]byte, durable.LineBytes)
		binary.LittleEndian.PutUint64(line, rng.Uint64())
		binary.LittleEndian.PutUint64(line[8:], uint64(i))
		if err := m.Write(addr, line); err != nil {
			return err
		}
		si, _, err := m.Sharded().Locate(addr)
		if err != nil {
			return err
		}
		ext[si] = append(ext[si], shadowWrite{addr, line})
		return nil
	}
	fail := func(err error) ([][]shadowWrite, error) {
		_ = m.Close() //morphlint:allow errdiscard build teardown
		return nil, err
	}
	for i := 0; i < extra; i++ {
		if err := write(i); err != nil {
			return fail(err)
		}
	}
	if err := m.CheckpointDelta(); err != nil {
		return fail(err)
	}
	for i := 0; i < tail; i++ {
		if err := write(extra + i); err != nil {
			return fail(err)
		}
	}
	if err := m.Close(); err != nil {
		return nil, err
	}
	return ext, nil
}

// checkDeltaRecovery opens dir and asserts the canonical delta-chain
// recovery shape: base snapshot 1, one delta applied, exactly the dirty
// tail replayed, state matching the shadow journal.
func checkDeltaRecovery(shcfg shard.Config, dir string, ext [][]shadowWrite, tail int, res trialResult) trialResult {
	m, info, err := durable.Open(shcfg, durable.Config{Dir: dir})
	if err != nil {
		res.Err = fmt.Sprintf("recovery refused a pure crash artifact: %v", err)
		return res
	}
	defer func() { _ = m.Close() }() //morphlint:allow errdiscard trial teardown
	res.Recovered = info.ReplayedWrites
	res.Expected = tail
	res.TornTails = info.TornTailCount()
	if info.SnapshotSeq != 1 {
		res.Err = fmt.Sprintf("recovered from base epoch %d, want 1", info.SnapshotSeq)
		return res
	}
	if info.DeltasApplied != 1 {
		res.Err = fmt.Sprintf("applied %d deltas, want 1", info.DeltasApplied)
		return res
	}
	if info.ReplayedWrites != tail {
		res.Err = fmt.Sprintf("replayed %d writes, want the %d-write dirty tail", info.ReplayedWrites, tail)
		return res
	}
	keep := make([]int, len(ext))
	for s := range ext {
		keep[s] = len(ext[s])
	}
	if err := checkState(m, ext, expectState(ext, keep)); err != nil {
		res.Err = err.Error()
		return res
	}
	res.Pass = true
	return res
}

// trialDelta kills the store mid-delta-checkpoint: a next-epoch delta temp
// file (partial on even points, empty on odd) sits beside the committed
// chain. Recovery must use the chain head, replay only the post-delta
// tail, and sweep the temp.
func trialDelta(shcfg shard.Config, work, master string, journal [][]shadowWrite, rng *rand.Rand, i int) trialResult {
	const stage = "delta"
	const extra, tail = 40, 20
	dir := filepath.Join(work, fmt.Sprintf("delta-%03d", i))
	ext, err := buildDeltaStore(shcfg, master, dir, journal, rng, extra, tail)
	if err != nil {
		return failTrial(stage, "", err)
	}
	tmp := ckpt.DeltaPath(dir, 3, 2) + ".tmp"
	var junk []byte
	detail := "empty next-delta temp beside committed chain"
	if i%2 == 0 {
		junk = make([]byte, 1+rng.Intn(4096))
		rng.Read(junk)
		detail = fmt.Sprintf("%d-byte partial next-delta temp beside committed chain", len(junk))
	}
	if err := os.WriteFile(tmp, junk, 0o644); err != nil {
		return failTrial(stage, detail, err)
	}
	res := checkDeltaRecovery(shcfg, dir, ext, tail, trialResult{Stage: stage, Detail: detail})
	if res.Pass {
		if _, err := os.Stat(tmp); err == nil {
			res.Pass = false
			res.Err = "partial delta temp survived recovery"
		}
	}
	return res
}

// trialCompact kills the store mid-compaction. Even points crash before
// the full snapshot renamed (stale epoch-3 segments + partial snapshot
// temp beside the live delta chain: recovery must stay on the chain and
// keep every link). Odd points crash after the rename but before the old
// chain's files were unlinked (snapshot, delta, and segments resurrected
// beside the committed epoch: recovery must prefer it and re-sweep).
func trialCompact(shcfg shard.Config, work, master string, journal [][]shadowWrite, rng *rand.Rand, i int) trialResult {
	const stage = "compact"
	const extra, tail = 40, 20
	dir := filepath.Join(work, fmt.Sprintf("compact-%03d", i))
	ext, err := buildDeltaStore(shcfg, master, dir, journal, rng, extra, tail)
	if err != nil {
		return failTrial(stage, "", err)
	}

	if i%2 == 0 {
		for s := range journal {
			if err := os.WriteFile(durable.SegmentPath(dir, 3, s), nil, 0o644); err != nil {
				return failTrial(stage, "", err)
			}
		}
		junk := make([]byte, 1+rng.Intn(4096))
		rng.Read(junk)
		if err := os.WriteFile(durable.SnapshotPath(dir, 3)+".tmp", junk, 0o644); err != nil {
			return failTrial(stage, "", err)
		}
		detail := "stale epoch-3 segments + partial snapshot temp beside delta chain"
		res := checkDeltaRecovery(shcfg, dir, ext, tail, trialResult{Stage: stage, Detail: detail})
		if res.Pass {
			for s := range journal {
				if _, err := os.Stat(durable.SegmentPath(dir, 3, s)); err == nil {
					res.Pass = false
					res.Err = fmt.Sprintf("stale epoch-3 segment %d survived recovery", s)
					return res
				}
			}
			// The chain the store still depends on must be intact.
			if _, err := os.Stat(ckpt.DeltaPath(dir, 2, 1)); err != nil {
				res.Pass = false
				res.Err = "sweep removed the live delta chain's link"
			}
		}
		return res
	}

	// Odd: run the real compaction, then resurrect the old chain's files —
	// exactly what a crash between the rename and the unlinks leaves.
	saved := map[string][]byte{}
	names := []string{
		filepath.Base(durable.SnapshotPath(dir, 1)),
		ckpt.DeltaName(2, 1),
	}
	for s := range journal {
		names = append(names, filepath.Base(durable.SegmentPath(dir, 1, s)))
	}
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return failTrial(stage, "", err)
		}
		saved[name] = data
	}
	m, _, err := durable.Open(shcfg, durable.Config{Dir: dir, NoAudit: true})
	if err != nil {
		return failTrial(stage, "", err)
	}
	if err := m.Checkpoint(); err != nil {
		return failTrial(stage, "", err)
	}
	if err := m.Close(); err != nil {
		return failTrial(stage, "", err)
	}
	for name, data := range saved {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return failTrial(stage, "", err)
		}
	}
	detail := "epoch-1 snapshot + delta 2←1 + segments resurrected beside committed epoch 3"

	m2, info, err := durable.Open(shcfg, durable.Config{Dir: dir})
	if err != nil {
		return failTrial(stage, detail, fmt.Errorf("recovery refused a pure crash artifact: %w", err))
	}
	defer func() { _ = m2.Close() }() //morphlint:allow errdiscard trial teardown
	res := trialResult{Stage: stage, Detail: detail, Recovered: info.ReplayedWrites, Expected: 0, TornTails: info.TornTailCount()}
	if info.SnapshotSeq != 3 {
		res.Err = fmt.Sprintf("recovered from epoch %d, want the committed 3", info.SnapshotSeq)
		return res
	}
	if info.DeltasApplied != 0 || info.ReplayedWrites != 0 {
		res.Err = fmt.Sprintf("applied %d deltas + %d writes, want 0 after a committed compaction", info.DeltasApplied, info.ReplayedWrites)
		return res
	}
	keep := make([]int, len(ext))
	for s := range ext {
		keep[s] = len(ext[s])
	}
	if err := checkState(m2, ext, expectState(ext, keep)); err != nil {
		res.Err = err.Error()
		return res
	}
	for _, name := range []string{filepath.Base(durable.SnapshotPath(dir, 1)), ckpt.DeltaName(2, 1)} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			res.Err = fmt.Sprintf("resurrected %s survived recovery", name)
			return res
		}
	}
	res.Pass = true
	return res
}

// probeTamperWAL flips one payload byte in a WAL frame and recomputes the
// CRC: indistinguishable from a crash to a checksum, so only the keyed
// record MAC can catch it.
func probeTamperWAL(shcfg shard.Config, work, master string, rng *rand.Rand) tamperResult {
	res := tamperResult{Target: "wal payload byte flip + CRC recompute"}
	dir := filepath.Join(work, "tamper-wal")
	if err := cloneDir(master, dir); err != nil {
		res.Err = err.Error()
		return res
	}
	seg := durable.SegmentPath(dir, 1, 0)
	data, err := os.ReadFile(seg)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	frames := len(data) / wal.WriteFrameBytes
	if frames == 0 {
		res.Err = "shard 0 WAL empty"
		return res
	}
	off := rng.Intn(frames) * wal.WriteFrameBytes
	body := data[off+8 : off+wal.WriteFrameBytes]
	body[30] ^= 0x40
	binary.LittleEndian.PutUint32(data[off+4:], crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)))
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		res.Err = err.Error()
		return res
	}
	_, _, err = durable.Open(shcfg, durable.Config{Dir: dir})
	if err == nil {
		res.Err = "tampered WAL recovered without error"
		return res
	}
	res.Err = err.Error()
	res.Detected = isIntegrity(err)
	return res
}

// probeTamperSnapshot checkpoints a clone (so state lives in the
// snapshot), then flips one snapshot byte.
func probeTamperSnapshot(shcfg shard.Config, work, master string) tamperResult {
	res := tamperResult{Target: "snapshot byte flip"}
	dir := filepath.Join(work, "tamper-snap")
	if err := cloneDir(master, dir); err != nil {
		res.Err = err.Error()
		return res
	}
	m, _, err := durable.Open(shcfg, durable.Config{Dir: dir})
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if err := m.Checkpoint(); err != nil {
		res.Err = err.Error()
		return res
	}
	if err := m.Close(); err != nil {
		res.Err = err.Error()
		return res
	}
	snap := durable.SnapshotPath(dir, 2)
	data, err := os.ReadFile(snap)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	data[len(data)/3] ^= 0x02
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		res.Err = err.Error()
		return res
	}
	_, _, err = durable.Open(shcfg, durable.Config{Dir: dir})
	if err == nil {
		res.Err = "tampered snapshot recovered without error"
		return res
	}
	res.Err = err.Error()
	res.Detected = isIntegrity(err)
	return res
}

// probeTamperDelta cuts a real delta checkpoint on a clone, then flips one
// byte of the delta segment: the authenticated stream must refuse it at
// recovery.
func probeTamperDelta(shcfg shard.Config, work, master string, journal [][]shadowWrite, rng *rand.Rand) tamperResult {
	res := tamperResult{Target: "delta segment byte flip"}
	dir := filepath.Join(work, "tamper-delta")
	if _, err := buildDeltaStore(shcfg, master, dir, journal, rng, 40, 0); err != nil {
		res.Err = err.Error()
		return res
	}
	path := ckpt.DeltaPath(dir, 2, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		res.Err = err.Error()
		return res
	}
	_, _, err = durable.Open(shcfg, durable.Config{Dir: dir})
	if err == nil {
		res.Err = "tampered delta recovered without error"
		return res
	}
	res.Err = err.Error()
	res.Detected = isIntegrity(err)
	return res
}

// recoveryCurve measures crash recovery at two state sizes. Each size runs
// the same workload twice: bulk writes covering every line plus a small
// dirty tail, recovered once by full WAL replay (no checkpoint) and once
// from a delta chain cut before the tail. The deterministic gate is that
// the delta path replays exactly the tail — the same count at both sizes,
// independent of the bulk history — and the wall-clock gate is a >= 5x
// win at the larger size, where the tail is <= 10% of the history.
func recoveryCurve(org string, shards int, seed int64, work string) ([]curvePoint, error) {
	const tail = 800
	syncNone, err := durable.ParseSyncPolicy("none")
	if err != nil {
		return nil, err
	}
	var curve []curvePoint
	for pi, mem := range []uint64{128 << 10, 512 << 10} {
		nlines := int(mem / durable.LineBytes)
		bulk := nlines * 8
		cp := curvePoint{MemBytes: mem, Lines: nlines, BulkWrites: bulk, TailWrites: tail}
		shcfg, err := shardConfig(org, shards, mem)
		if err != nil {
			return nil, err
		}
		run := func(name string, delta bool) (replayed int, millis float64, err error) {
			dir := filepath.Join(work, fmt.Sprintf("curve-%d-%s", mem, name))
			m, _, err := durable.Open(shcfg, durable.Config{Dir: dir, Sync: syncNone, NoAudit: true})
			if err != nil {
				return 0, 0, err
			}
			rng := rand.New(rand.NewSource(seed + int64(pi)))
			line := make([]byte, durable.LineBytes)
			write := func(i int) error {
				binary.LittleEndian.PutUint64(line, rng.Uint64())
				binary.LittleEndian.PutUint64(line[8:], uint64(i))
				return m.Write((rng.Uint64()%uint64(nlines))*durable.LineBytes, line)
			}
			for i := 0; i < bulk; i++ {
				if err := write(i); err != nil {
					return 0, 0, err
				}
			}
			if delta {
				if err := m.CheckpointDelta(); err != nil {
					return 0, 0, err
				}
			}
			for i := 0; i < tail; i++ {
				if err := write(bulk + i); err != nil {
					return 0, 0, err
				}
			}
			if err := m.Close(); err != nil {
				return 0, 0, err
			}
			m2, info, err := durable.Open(shcfg, durable.Config{Dir: dir, NoAudit: true})
			if err != nil {
				return 0, 0, fmt.Errorf("curve recovery (%s, %d bytes): %w", name, mem, err)
			}
			if err := m2.Close(); err != nil {
				return 0, 0, err
			}
			return info.ReplayedWrites, float64(info.Elapsed.Microseconds()) / 1000, nil
		}
		if cp.FullReplayed, cp.FullMillis, err = run("full", false); err != nil {
			return nil, err
		}
		if cp.DeltaReplayed, cp.DeltaMillis, err = run("delta", true); err != nil {
			return nil, err
		}
		if cp.DeltaMillis > 0 {
			cp.Speedup = cp.FullMillis / cp.DeltaMillis
		}
		switch {
		case cp.FullReplayed != bulk+tail:
			cp.Err = fmt.Sprintf("full replay recovered %d writes, want %d", cp.FullReplayed, bulk+tail)
		case cp.DeltaReplayed != tail:
			cp.Err = fmt.Sprintf("delta recovery replayed %d writes, want the %d-write dirty tail — recovery is scaling with history, not dirt", cp.DeltaReplayed, tail)
		case pi == 1 && cp.Speedup < 5:
			cp.Err = fmt.Sprintf("delta recovery speedup %.1fx at %.1f%% dirty, want >= 5x", cp.Speedup, 100*float64(tail)/float64(bulk+tail))
		default:
			cp.Pass = true
		}
		curve = append(curve, cp)
	}
	return curve, nil
}

// benchStall measures per-write latency for the same workload with and
// without the background delta checkpointer, gating on the p99 ratio with
// an additive fallback: a write may briefly wait out the in-memory dirty
// copy (the freeze), so a sub-millisecond additive bump is within the
// design's stall budget even when instrumentation (the race detector)
// inflates it past the 1.5x ratio. What the gate must catch is checkpoint
// file I/O leaking inside the freeze — that stalls writes for the
// multi-millisecond duration of a segment write + fsync and fails both
// arms.
func benchStall(shcfg shard.Config, work string, seed int64) stallResult {
	const writes = 5000
	const stallBudgetUS = 1000.0
	res := stallResult{Writes: writes}
	sync, err := durable.ParseSyncPolicy("interval")
	if err != nil {
		res.Err = err.Error()
		return res
	}
	run := func(name string, withCkpt bool) (p99us float64, deltas uint64, err error) {
		dir := filepath.Join(work, "stall-"+name)
		m, _, err := durable.Open(shcfg, durable.Config{Dir: dir, Sync: sync, NoAudit: true})
		if err != nil {
			return 0, 0, err
		}
		defer func() {
			if cerr := m.Close(); err == nil {
				err = cerr
			}
		}()
		if withCkpt {
			r := ckpt.NewRunner(m, 2*time.Millisecond, 0, func(error) {})
			defer r.Stop()
		}
		rng := rand.New(rand.NewSource(seed + 13))
		nlines := shcfg.Mem.MemoryBytes / durable.LineBytes
		line := make([]byte, durable.LineBytes)
		lat := make([]time.Duration, writes)
		for i := 0; i < writes; i++ {
			binary.LittleEndian.PutUint64(line, rng.Uint64())
			addr := (rng.Uint64() % nlines) * durable.LineBytes
			t0 := time.Now()
			if err := m.Write(addr, line); err != nil {
				return 0, 0, err
			}
			lat[i] = time.Since(t0)
			if withCkpt && i == writes/2 && m.Durability().DeltaCheckpoints == 0 {
				// The runner has not fired yet (a very fast run): cut one
				// directly so the comparison always measures a live delta.
				if err := m.CheckpointDelta(); err != nil {
					return 0, 0, err
				}
			}
		}
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		p99 := lat[writes*99/100]
		return float64(p99.Nanoseconds()) / 1000, m.Durability().DeltaCheckpoints, nil
	}
	if res.P99BaseUS, _, err = run("base", false); err != nil {
		res.Err = err.Error()
		return res
	}
	if res.P99CkptUS, res.Deltas, err = run("ckpt", true); err != nil {
		res.Err = err.Error()
		return res
	}
	if res.P99BaseUS > 0 {
		res.Ratio = res.P99CkptUS / res.P99BaseUS
	}
	switch {
	case res.Deltas == 0:
		res.Err = "no delta checkpoints were cut during the measured run"
	case res.Ratio <= 1.5 || res.P99CkptUS-res.P99BaseUS <= stallBudgetUS:
		res.Pass = true
	default:
		res.Err = fmt.Sprintf("write p99 %.0fus with background checkpoints vs %.0fus without (%.2fx > 1.5x and +%.0fus past the stall budget)",
			res.P99CkptUS, res.P99BaseUS, res.Ratio, res.P99CkptUS-res.P99BaseUS)
	}
	return res
}

func isIntegrity(err error) bool {
	var ie *secmem.IntegrityError
	return errors.As(err, &ie)
}

// benchMode measures acknowledged-write throughput for one durability mode.
func benchMode(shcfg shard.Config, work, mode string, writes int, seed int64) (benchResult, error) {
	br := benchResult{Mode: mode, Writes: writes}
	rng := rand.New(rand.NewSource(seed + 7))
	nlines := shcfg.Mem.MemoryBytes / durable.LineBytes
	line := make([]byte, durable.LineBytes)

	var write func(addr uint64, line []byte) error
	var done func() error
	if mode == "volatile" {
		sh, err := shard.New(shcfg)
		if err != nil {
			return br, err
		}
		write = sh.Write
		done = func() error { return nil }
	} else {
		sync, err := durable.ParseSyncPolicy(mode)
		if err != nil {
			return br, err
		}
		m, _, err := durable.Open(shcfg, durable.Config{Dir: filepath.Join(work, "bench-"+mode), Sync: sync})
		if err != nil {
			return br, err
		}
		write = m.Write
		done = m.Close
	}
	start := time.Now()
	for i := 0; i < writes; i++ {
		binary.LittleEndian.PutUint64(line, rng.Uint64())
		if err := write((rng.Uint64()%nlines)*durable.LineBytes, line); err != nil {
			return br, fmt.Errorf("bench %s write %d: %w", mode, i, err)
		}
	}
	if err := done(); err != nil {
		return br, err
	}
	br.Seconds = time.Since(start).Seconds()
	if br.Seconds > 0 {
		br.WritesPerMs = float64(writes) / (br.Seconds * 1000)
	}
	return br, nil
}

func cloneDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
