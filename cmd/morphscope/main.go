// Command morphscope is a live telemetry poller for morphserve: it scrapes
// the admin plane's /metricz and /tracez (or, with -addr, the wire OBS op)
// on an interval and prints per-op throughput and latency quantiles, event
// rates, and the engine's counter-organization activity (overflows,
// rebases, format switches) as interval deltas.
//
// Usage:
//
//	morphscope -admin 127.0.0.1:7544                   # poll forever
//	morphscope -admin 127.0.0.1:7544 -samples 3 -json BENCH_obs.json
//	morphscope -addr 127.0.0.1:7443                    # wire OBS op, no HTTP
//	morphscope -admin 127.0.0.1:7544 -check            # health probe, exit 1 on failure
//
// Quantiles are computed from the server's mergeable histogram buckets:
// each sample deltas the cumulative snapshot against the previous one, so
// the numbers describe the last interval, not the whole run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/wire"
)

// source is where snapshots come from: the admin HTTP plane (metrics +
// trace) or the wire protocol's OBS op (metrics only).
type source interface {
	metrics() (obs.Snapshot, error)
	trace() (obs.TraceSnapshot, bool, error) // ok=false when unsupported
	name() string
}

type httpSource struct {
	base   string
	client *http.Client
}

func (s *httpSource) name() string { return s.base }

func (s *httpSource) get(path string) ([]byte, error) {
	resp, err := s.client.Get(s.base + path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}

func (s *httpSource) metrics() (obs.Snapshot, error) {
	body, err := s.get("/metricz")
	if err != nil {
		return obs.Snapshot{}, err
	}
	return obs.DecodeSnapshot(body)
}

func (s *httpSource) trace() (obs.TraceSnapshot, bool, error) {
	body, err := s.get("/tracez")
	if err != nil {
		return obs.TraceSnapshot{}, true, err
	}
	ts, err := obs.DecodeTraceSnapshot(body)
	return ts, true, err
}

type wireSource struct {
	cl   *wire.ResilientClient
	addr string
}

func (s *wireSource) name() string { return s.addr + " (wire OBS)" }

func (s *wireSource) metrics() (obs.Snapshot, error) {
	body, err := s.cl.Obs()
	if err != nil {
		return obs.Snapshot{}, err
	}
	return obs.DecodeSnapshot(body)
}

func (s *wireSource) trace() (obs.TraceSnapshot, bool, error) {
	return obs.TraceSnapshot{}, false, nil
}

// opRow is one per-op line of the table and of the -json report.
type opRow struct {
	Op    string  `json:"op"`
	QPS   float64 `json:"qps"`
	P50US float64 `json:"p50_us"`
	P90US float64 `json:"p90_us"`
	P99US float64 `json:"p99_us"`
	MaxUS float64 `json:"max_us"`
	Total uint64  `json:"total_samples"`
}

// jsonReport is the BENCH_obs.json schema: the last interval's table plus
// cumulative counters and trace totals.
type jsonReport struct {
	Source     string             `json:"source"`
	IntervalS  float64            `json:"interval_s"`
	Samples    int                `json:"samples"`
	Ops        []opRow            `json:"ops"`
	EventsPerS map[string]float64 `json:"events_per_s,omitempty"`
	Counters   map[string]uint64  `json:"counters"`
	Gauges     map[string]int64   `json:"gauges"`
	Dropped    uint64             `json:"trace_dropped"`
}

const opPrefix = "server.op."
const opSuffix = ".latency"

// opRows deltas cur against prev and builds the per-op table, sorted by
// op name, ops with no traffic in the interval included (qps 0) so the
// table shape is stable across samples.
func opRows(prev, cur obs.Snapshot, interval time.Duration) []opRow {
	var rows []opRow
	for name, h := range cur.Histograms {
		if !strings.HasPrefix(name, opPrefix) || !strings.HasSuffix(name, opSuffix) {
			continue
		}
		d := h.Delta(prev.Histograms[name])
		us := func(ns int64) float64 { return float64(ns) / float64(time.Microsecond) }
		rows = append(rows, opRow{
			Op:    strings.TrimSuffix(strings.TrimPrefix(name, opPrefix), opSuffix),
			QPS:   float64(d.Count) / interval.Seconds(),
			P50US: us(d.P50),
			P90US: us(d.Quantile(0.90)),
			P99US: us(d.P99),
			MaxUS: us(int64(d.Max)),
			Total: h.Count,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Op < rows[j].Op })
	return rows
}

// engineCounters picks the counter keys worth a line in the terminal view:
// the paper's overflow/rebase/format-switch activity plus durability.
var engineCounters = []string{
	"secmem.overflows", "secmem.set_resets", "secmem.rebases",
	"secmem.format_switches", "secmem.reencryptions", "secmem.verified_fetches",
	"durable.fsyncs", "durable.checkpoints",
	"durable.ckpt.deltas", "durable.ckpt.compactions", "durable.ckpt.chain",
	"durable.recovery_us", "cluster.migrations",
	"server.accepted", "server.shed",
}

func printSample(w io.Writer, n int, prev, cur obs.Snapshot, pt, ct obs.TraceSnapshot, haveTrace bool, interval time.Duration) []opRow {
	rows := opRows(prev, cur, interval)
	fmt.Fprintf(w, "--- sample %d @ %s ---\n", n, time.Now().Format("15:04:05"))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "OP\tQPS\tP50\tP90\tP99\tMAX\tTOTAL")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0fus\t%.0fus\t%.0fus\t%.0fus\t%d\n",
			r.Op, r.QPS, r.P50US, r.P90US, r.P99US, r.MaxUS, r.Total)
	}
	_ = tw.Flush()
	var parts []string
	for _, k := range engineCounters {
		if v, ok := cur.Counters[k]; ok {
			parts = append(parts, fmt.Sprintf("%s=%d(+%d)", strings.TrimPrefix(k, "secmem."), v, v-prev.Counters[k]))
		}
	}
	if len(parts) > 0 {
		fmt.Fprintf(w, "engine: %s\n", strings.Join(parts, " "))
	}
	// Per-shard write counts spot load imbalance at a glance.
	var shards []string
	for name, v := range cur.Counters {
		if strings.HasPrefix(name, "shard.") && strings.HasSuffix(name, ".writes") {
			shards = append(shards, fmt.Sprintf("%s=%d", strings.TrimSuffix(strings.TrimPrefix(name, "shard."), ".writes"), v))
		}
	}
	if len(shards) > 0 {
		sort.Strings(shards)
		fmt.Fprintf(w, "shard writes: %s\n", strings.Join(shards, " "))
	}
	if haveTrace {
		var evs []string
		for kind, v := range ct.Counts {
			if d := v - pt.Counts[kind]; d > 0 {
				evs = append(evs, fmt.Sprintf("%s=%.0f/s", kind, float64(d)/interval.Seconds()))
			}
		}
		sort.Strings(evs)
		if len(evs) > 0 {
			fmt.Fprintf(w, "events: %s (dropped %d)\n", strings.Join(evs, " "), ct.Dropped)
		}
	}
	return rows
}

// check probes the telemetry plane and exits nonzero unless the server is
// healthy and visibly doing work: /healthz answers 200 (HTTP source),
// metrics decode with at least one op sample, and the tracer (if
// reachable) has emitted events.
func check(src source) error {
	if hs, ok := src.(*httpSource); ok {
		body, err := hs.get("/healthz")
		if err != nil {
			return fmt.Errorf("healthz: %w", err)
		}
		if got := strings.TrimSpace(string(body)); got != "ok" {
			return fmt.Errorf("healthz: body %q, want ok", got)
		}
	}
	snap, err := src.metrics()
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	var opSamples uint64
	for name, h := range snap.Histograms {
		if strings.HasPrefix(name, opPrefix) {
			opSamples += h.Count
		}
	}
	if opSamples == 0 {
		return fmt.Errorf("metrics: no per-op latency samples recorded")
	}
	if ts, ok, err := src.trace(); ok {
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if ts.Emitted == 0 {
			return fmt.Errorf("trace: no events emitted")
		}
	}
	return nil
}

func main() {
	admin := flag.String("admin", "", "morphserve admin plane address or URL (polls /metricz and /tracez)")
	addr := flag.String("addr", "", "morphserve wire address (fallback: polls the OBS op; no trace data)")
	interval := flag.Duration("interval", time.Second, "poll interval")
	samples := flag.Int("samples", 0, "number of samples to take (0 = until interrupted)")
	jsonOut := flag.String("json", "", "write the final sample's table + cumulative counters as JSON to this file")
	doCheck := flag.Bool("check", false, "probe health and telemetry liveness once and exit (nonzero on failure)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request timeout")
	flag.Parse()

	var src source
	switch {
	case *admin != "":
		base := *admin
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		src = &httpSource{base: strings.TrimRight(base, "/"), client: &http.Client{Timeout: *timeout}}
	case *addr != "":
		src = &wireSource{addr: *addr, cl: wire.NewResilient(wire.ResilientConfig{Addr: *addr, Timeout: *timeout})}
	default:
		log.Fatal("morphscope: one of -admin or -addr is required")
	}

	if *doCheck {
		if err := check(src); err != nil {
			log.Fatalf("morphscope: check %s: %v", src.name(), err)
		}
		fmt.Printf("morphscope: %s healthy, telemetry live\n", src.name())
		return
	}

	prev, err := src.metrics()
	if err != nil {
		log.Fatalf("morphscope: %s: %v", src.name(), err)
	}
	pt, haveTrace, err := src.trace()
	if haveTrace && err != nil {
		log.Fatalf("morphscope: %s: %v", src.name(), err)
	}
	fmt.Printf("morphscope: polling %s every %v\n", src.name(), *interval)

	var lastRows []opRow
	var lastSnap obs.Snapshot
	var lastTrace obs.TraceSnapshot
	var lastEvents map[string]float64
	taken := 0
	for *samples <= 0 || taken < *samples {
		time.Sleep(*interval)
		cur, err := src.metrics()
		if err != nil {
			log.Fatalf("morphscope: %s: %v", src.name(), err)
		}
		var ct obs.TraceSnapshot
		if haveTrace {
			if ct, _, err = src.trace(); err != nil {
				log.Fatalf("morphscope: %s: %v", src.name(), err)
			}
			lastEvents = map[string]float64{}
			for kind, v := range ct.Counts {
				lastEvents[kind] = float64(v-pt.Counts[kind]) / interval.Seconds()
			}
		}
		taken++
		lastRows = printSample(os.Stdout, taken, prev, cur, pt, ct, haveTrace, *interval)
		lastSnap, lastTrace = cur, ct
		prev, pt = cur, ct
	}

	if *jsonOut != "" {
		rep := jsonReport{
			Source:    src.name(),
			IntervalS: interval.Seconds(),
			Samples:   taken,
			Ops:       lastRows,
			Counters:  lastSnap.Counters,
			Gauges:    lastSnap.Gauges,
			Dropped:   lastTrace.Dropped,
		}
		rep.EventsPerS = lastEvents
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("morphscope: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatalf("morphscope: %v", err)
		}
		fmt.Printf("morphscope: wrote %s\n", *jsonOut)
	}
}
