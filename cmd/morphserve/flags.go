package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"strings"
	"time"

	"github.com/securemem/morphtree/internal/counters"
	"github.com/securemem/morphtree/internal/durable"
	"github.com/securemem/morphtree/internal/shard"
)

// options carries every morphserve flag plus the values resolved from
// them during validation. Parsing and validation are separated from main
// so every refusal path is a returned error with an actionable message —
// testable without exec'ing the binary — instead of a log.Fatalf buried
// in wiring code.
type options struct {
	addr         string
	org          string
	shards       int
	mem          uint64
	keyHex       string
	maxConns     int
	maxInflight  int
	shedWait     time.Duration
	timeout      time.Duration
	frameTimeout time.Duration
	tamper       bool
	dataDir      string
	fsyncMode    string
	snapEvery    time.Duration
	deltaEvery   time.Duration
	keepEpochs   int
	tenants      string
	admin        string
	traceBuf     int
	signSeed     string

	// Cluster flags. -cluster turns the node into a replication member;
	// -cluster-join names the leader to follow (absent = start as the
	// primary); -cluster-peers is the static membership used for failover
	// catch-up donor pulls.
	cluster      bool
	clusterSelf  string
	clusterJoin  string
	clusterPeers string
	clusterLease time.Duration
	clusterAck   int
	clusterEpoch uint64

	// Resolved during validate.
	key   []byte
	seed  []byte // transparency-log signing seed ("" flag → derived later)
	sync  durable.SyncPolicy
	enc   counters.Spec
	tree  []counters.Spec
	peers []string
}

// parseFlags parses args (without the program name) into options. Flag
// syntax errors come back as errors, not os.Exit.
func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("morphserve", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:7443", "listen address")
	fs.StringVar(&o.org, "org", "morph128", "counter organization: sc64, sc128, vault, morph128, morph128-zcc")
	fs.IntVar(&o.shards, "shards", 0, "shard count (0 = GOMAXPROCS)")
	fs.Uint64Var(&o.mem, "mem", 4<<20, "total protected capacity in bytes")
	fs.StringVar(&o.keyHex, "key", "", "AES master key in hex (16/24/32 bytes; default is a fixed demo key)")
	fs.IntVar(&o.maxConns, "max-conns", 256, "concurrent connection cap (excess sheds with BUSY)")
	fs.IntVar(&o.maxInflight, "max-inflight", 0, "concurrently executing request cap (0 = 4x GOMAXPROCS); excess sheds with BUSY")
	fs.DurationVar(&o.shedWait, "shed-wait", 10*time.Millisecond, "how long a request may wait for an in-flight slot before being shed")
	fs.DurationVar(&o.timeout, "timeout", 30*time.Second, "idle read / response write deadline")
	fs.DurationVar(&o.frameTimeout, "frame-timeout", 5*time.Second, "slow-loris bound: a started request frame must complete within this")
	fs.BoolVar(&o.tamper, "tamper", false, "enable the wire-level TAMPER op (adversary interface, demos only)")
	fs.StringVar(&o.dataDir, "data-dir", "", "durability directory (empty = volatile, no persistence)")
	fs.StringVar(&o.fsyncMode, "fsync", "always", "WAL fsync policy with -data-dir: always, interval, none")
	fs.DurationVar(&o.snapEvery, "snapshot-every", time.Minute, "periodic checkpoint interval with -data-dir (0 disables)")
	fs.DurationVar(&o.deltaEvery, "delta-every", 0, "background incremental-checkpoint interval with -data-dir (0 disables); deltas persist only dirty lines and compact to a full snapshot when the chain grows")
	fs.IntVar(&o.keepEpochs, "keep-epochs", 0, "checkpoint epochs to retain past the newest with -data-dir (0 = newest only; delta chains always keep their base)")
	fs.StringVar(&o.tenants, "tenants", "", "tenant config file (JSON array of specs); enables multi-tenant mode: HELLO-bound connections, per-tenant key domains, weighted fair admission")
	fs.StringVar(&o.admin, "admin", "", "admin telemetry listen address serving /metricz /tracez /healthz /rootz and pprof (empty = disabled; also enables the wire OBS op)")
	fs.IntVar(&o.traceBuf, "trace-buf", 4096, "event trace ring capacity with -admin")
	fs.StringVar(&o.signSeed, "sign-seed", "", "transparency-log Ed25519 signing seed in hex (32 bytes; default derives one from the master key)")
	fs.BoolVar(&o.cluster, "cluster", false, "serve as a replication cluster node (requires -data-dir)")
	fs.StringVar(&o.clusterSelf, "cluster-self", "", "address this node advertises to the cluster (default: the bound -addr)")
	fs.StringVar(&o.clusterJoin, "cluster-join", "", "leader address to follow as a replica (empty = start as the primary)")
	fs.StringVar(&o.clusterPeers, "cluster-peers", "", "comma-separated peer addresses used as catch-up donors during failover")
	fs.DurationVar(&o.clusterLease, "cluster-lease", time.Second, "primary lease: a replica refuses promotion until this long after its last leader contact")
	fs.IntVar(&o.clusterAck, "cluster-ack", 0, "replicas that must cover a write before it is acknowledged (0 = ack on local durability)")
	fs.Uint64Var(&o.clusterEpoch, "cluster-epoch", 1, "initial fencing epoch (persisted epochs from a previous run take precedence)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 0 {
		return nil, fmt.Errorf("unexpected positional arguments %q (morphserve takes flags only)", fs.Args())
	}
	return o, nil
}

// validate cross-checks the flag set and resolves derived values. Every
// error names the offending flag and says what to do instead.
func (o *options) validate() error {
	o.key = []byte("0123456789abcdef")
	if o.keyHex != "" {
		k, err := hex.DecodeString(o.keyHex)
		if err != nil {
			return fmt.Errorf("-key: %v (pass the AES key as hex, e.g. -key 00112233445566778899aabbccddeeff)", err)
		}
		switch len(k) {
		case 16, 24, 32:
		default:
			return fmt.Errorf("-key: %d bytes; an AES key must be 16, 24, or 32 bytes", len(k))
		}
		o.key = k
	}

	var err error
	if o.enc, o.tree, err = shard.Organization(o.org); err != nil {
		return fmt.Errorf("-org: %v", err)
	}
	if o.mem == 0 {
		return fmt.Errorf("-mem: protected capacity must be > 0 bytes")
	}

	if o.signSeed != "" {
		s, err := hex.DecodeString(o.signSeed)
		if err != nil {
			return fmt.Errorf("-sign-seed: %v (pass 32 bytes of hex)", err)
		}
		if len(s) != 32 {
			return fmt.Errorf("-sign-seed: %d bytes; an Ed25519 seed must be exactly 32 bytes", len(s))
		}
		o.seed = s
	}

	if o.sync, err = durable.ParseSyncPolicy(o.fsyncMode); err != nil {
		return fmt.Errorf("-fsync: %v", err)
	}

	if o.keepEpochs < 0 {
		return fmt.Errorf("-keep-epochs must be >= 0 (got %d); 0 keeps only the newest epoch", o.keepEpochs)
	}
	if o.dataDir == "" {
		if o.keepEpochs != 0 {
			return fmt.Errorf("-keep-epochs has no effect without -data-dir: there are no checkpoint epochs to retain; add -data-dir <dir> or drop it")
		}
		if o.deltaEvery != 0 {
			return fmt.Errorf("-delta-every has no effect without -data-dir: there is nothing to checkpoint; add -data-dir <dir> or drop it")
		}
	}
	if o.deltaEvery < 0 {
		return fmt.Errorf("-delta-every must be >= 0 (got %v); 0 disables background delta checkpoints", o.deltaEvery)
	}

	if o.tenants != "" {
		// Tenant key domains tag lines in the volatile engine only; the WAL
		// and snapshot formats do not carry domain ownership, so a durable
		// restart would silently reseal every tenant's lines under the
		// default domain. Refuse the combination rather than serve it wrong.
		if o.dataDir != "" {
			return fmt.Errorf("-tenants is incompatible with -data-dir: the WAL and snapshot formats do not record tenant key domains, so a restart would reseal every tenant's lines under the default domain; drop one of the two flags (durable tenant key domains are future work)")
		}
		if o.cluster {
			return fmt.Errorf("-tenants is incompatible with -cluster: replication ships the WAL, which does not record tenant key domains; drop one of the two flags")
		}
	}

	if o.cluster {
		if o.dataDir == "" {
			return fmt.Errorf("-cluster requires -data-dir: replication streams the durable WAL, so a cluster node must journal writes (add -data-dir <dir>)")
		}
		if o.clusterJoin != "" && o.clusterJoin == o.clusterSelf {
			return fmt.Errorf("-cluster-join %s is this node's own -cluster-self address; a replica cannot follow itself", o.clusterJoin)
		}
		if o.clusterLease <= 0 {
			return fmt.Errorf("-cluster-lease must be positive: the lease is the failover safety window (got %v)", o.clusterLease)
		}
		if o.clusterAck < 0 {
			return fmt.Errorf("-cluster-ack must be >= 0 (got %d)", o.clusterAck)
		}
		if o.clusterEpoch == 0 {
			return fmt.Errorf("-cluster-epoch must be >= 1: epoch 0 is below every fencing token")
		}
		for _, p := range strings.Split(o.clusterPeers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				o.peers = append(o.peers, p)
			}
		}
	} else {
		for flagName, set := range map[string]bool{
			"-cluster-self":  o.clusterSelf != "",
			"-cluster-join":  o.clusterJoin != "",
			"-cluster-peers": o.clusterPeers != "",
			"-cluster-ack":   o.clusterAck != 0,
		} {
			if set {
				return fmt.Errorf("%s has no effect without -cluster; add -cluster or drop it", flagName)
			}
		}
	}
	return nil
}
