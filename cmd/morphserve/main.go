// Command morphserve runs a sharded secure-memory service: N independent
// secmem engines behind a TCP wire protocol (READ / WRITE / VERIFY / STATS
// / SNAPSHOT frames), with the counter organization selectable among the
// designs the paper evaluates.
//
// Usage:
//
//	morphserve -addr 127.0.0.1:7443 -org morph128 -shards 8 -mem 4194304
//	morphserve -tamper        # enable the wire-level tamper op for demos
//
// Drive it with cmd/morphload; stop it with SIGINT/SIGTERM for a graceful
// drain.
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/server"
	"github.com/securemem/morphtree/internal/shard"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7443", "listen address")
	org := flag.String("org", "morph128", "counter organization: sc64, sc128, vault, morph128, morph128-zcc")
	shards := flag.Int("shards", 0, "shard count (0 = GOMAXPROCS)")
	mem := flag.Uint64("mem", 4<<20, "total protected capacity in bytes")
	keyHex := flag.String("key", "", "AES master key in hex (16/24/32 bytes; default is a fixed demo key)")
	maxConns := flag.Int("max-conns", 256, "concurrent connection cap")
	timeout := flag.Duration("timeout", 30*time.Second, "per-frame read/write deadline")
	tamper := flag.Bool("tamper", false, "enable the wire-level TAMPER op (adversary interface, demos only)")
	flag.Parse()

	key := []byte("0123456789abcdef")
	if *keyHex != "" {
		k, err := hex.DecodeString(*keyHex)
		if err != nil {
			log.Fatalf("morphserve: -key: %v", err)
		}
		key = k
	}
	n := *shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	enc, tree, err := shard.Organization(*org)
	if err != nil {
		log.Fatalf("morphserve: %v", err)
	}
	sh, err := shard.New(shard.Config{
		Shards: n,
		Mem: secmem.Config{
			MemoryBytes: *mem,
			Enc:         enc,
			Tree:        tree,
			Key:         key,
		},
	})
	if err != nil {
		log.Fatalf("morphserve: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("morphserve: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("morphserve: %v: draining", sig)
		cancel()
	}()

	fmt.Printf("morphserve: %s, %d shards, %d MiB, listening on %s (tamper=%v)\n",
		*org, n, *mem>>20, ln.Addr(), *tamper)
	srv := server.New(sh, server.Config{
		MaxConns:     *maxConns,
		ReadTimeout:  *timeout,
		WriteTimeout: *timeout,
		AllowTamper:  *tamper,
	})
	err = srv.Serve(ctx, ln)
	if err != nil && ctx.Err() == nil {
		log.Fatalf("morphserve: %v", err)
	}
	st := sh.Stats()
	fmt.Printf("morphserve: served %d reads, %d writes, %d verified fetches; overflows %v, rebases %v, re-encryptions %d\n",
		st.Reads, st.Writes, st.VerifiedFetches, st.Overflows, st.Rebases, st.Reencryptions)
}
