// Command morphserve runs a sharded secure-memory service: N independent
// secmem engines behind a TCP wire protocol (READ / WRITE / VERIFY / STATS
// / SNAPSHOT / CHECKPOINT frames), with the counter organization selectable
// among the designs the paper evaluates.
//
// Usage:
//
//	morphserve -addr 127.0.0.1:7443 -org morph128 -shards 8 -mem 4194304
//	morphserve -data-dir /var/lib/morphserve            # crash-consistent
//	morphserve -data-dir d -fsync interval -snapshot-every 30s
//	morphserve -tamper        # enable the wire-level tamper op for demos
//
// Without -data-dir the store is volatile. With it, every write is
// journaled to a write-ahead log before it is acknowledged, snapshots are
// cut atomically (on the -snapshot-every timer and on CHECKPOINT frames),
// and a restart recovers the pre-crash state — refusing to start if the
// on-disk files show tampering rather than a torn crash tail.
//
// Drive it with cmd/morphload; stop it with SIGINT/SIGTERM for a graceful
// drain (which also flushes the WAL).
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/securemem/morphtree/internal/durable"
	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/proof"
	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/server"
	"github.com/securemem/morphtree/internal/shard"
	"github.com/securemem/morphtree/internal/tenant"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7443", "listen address")
	org := flag.String("org", "morph128", "counter organization: sc64, sc128, vault, morph128, morph128-zcc")
	shards := flag.Int("shards", 0, "shard count (0 = GOMAXPROCS)")
	mem := flag.Uint64("mem", 4<<20, "total protected capacity in bytes")
	keyHex := flag.String("key", "", "AES master key in hex (16/24/32 bytes; default is a fixed demo key)")
	maxConns := flag.Int("max-conns", 256, "concurrent connection cap (excess sheds with BUSY)")
	maxInflight := flag.Int("max-inflight", 0, "concurrently executing request cap (0 = 4x GOMAXPROCS); excess sheds with BUSY")
	shedWait := flag.Duration("shed-wait", 10*time.Millisecond, "how long a request may wait for an in-flight slot before being shed")
	timeout := flag.Duration("timeout", 30*time.Second, "idle read / response write deadline")
	frameTimeout := flag.Duration("frame-timeout", 5*time.Second, "slow-loris bound: a started request frame must complete within this")
	tamper := flag.Bool("tamper", false, "enable the wire-level TAMPER op (adversary interface, demos only)")
	dataDir := flag.String("data-dir", "", "durability directory (empty = volatile, no persistence)")
	fsyncMode := flag.String("fsync", "always", "WAL fsync policy with -data-dir: always, interval, none")
	snapEvery := flag.Duration("snapshot-every", time.Minute, "periodic checkpoint interval with -data-dir (0 disables)")
	tenants := flag.String("tenants", "", "tenant config file (JSON array of specs); enables multi-tenant mode: HELLO-bound connections, per-tenant key domains, weighted fair admission")
	admin := flag.String("admin", "", "admin telemetry listen address serving /metricz /tracez /healthz /rootz and pprof (empty = disabled; also enables the wire OBS op)")
	traceBuf := flag.Int("trace-buf", 4096, "event trace ring capacity with -admin")
	signSeed := flag.String("sign-seed", "", "transparency-log Ed25519 signing seed in hex (32 bytes; default derives one from the master key)")
	flag.Parse()

	key := []byte("0123456789abcdef")
	if *keyHex != "" {
		k, err := hex.DecodeString(*keyHex)
		if err != nil {
			log.Fatalf("morphserve: -key: %v", err)
		}
		key = k
	}
	n := *shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	enc, tree, err := shard.Organization(*org)
	if err != nil {
		log.Fatalf("morphserve: %v", err)
	}
	shcfg := shard.Config{
		Shards: n,
		Mem: secmem.Config{
			MemoryBytes: *mem,
			Enc:         enc,
			Tree:        tree,
			Key:         key,
		},
	}

	// One registry + tracer instruments every layer when -admin is set; a
	// nil registry keeps the whole stack on its uninstrumented fast path.
	var reg *obs.Registry
	var tracer *obs.Tracer
	if *admin != "" {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(*traceBuf)
		shcfg.Obs = reg
		shcfg.Tracer = tracer
	}

	// The signing authority behind OpProof attestations and the epoch-root
	// transparency log. The default seed is derived from the master key so
	// restarts keep the same identity without extra flag plumbing; operators
	// who want a distinct log identity pass -sign-seed.
	seed := proof.DeriveAuthoritySeed(key)
	if *signSeed != "" {
		s, err := hex.DecodeString(*signSeed)
		if err != nil {
			log.Fatalf("morphserve: -sign-seed: %v", err)
		}
		seed = s
	}
	authority, err := proof.NewAuthority(seed)
	if err != nil {
		log.Fatalf("morphserve: -sign-seed: %v", err)
	}

	// Tenant key domains tag lines in the volatile engine only; the WAL and
	// snapshot formats do not carry domain ownership, so a durable restart
	// would silently reseal every tenant's lines under the default domain.
	// Refuse the combination rather than serve it wrong.
	var treg *tenant.Registry
	if *tenants != "" {
		if *dataDir != "" {
			log.Fatalf("morphserve: -tenants is incompatible with -data-dir (durable tenant key domains are future work)")
		}
		r, err := tenant.LoadConfig(*tenants)
		if err != nil {
			log.Fatalf("morphserve: -tenants: %v", err)
		}
		treg = r
	}

	// eng is the serving surface; dm is non-nil only in durable mode.
	var eng server.Engine
	var dm *durable.Memory
	if *dataDir == "" {
		sh, err := shard.New(shcfg)
		if err != nil {
			log.Fatalf("morphserve: %v", err)
		}
		if treg != nil {
			if err := sh.RegisterTenants(treg.IDs()); err != nil {
				log.Fatalf("morphserve: -tenants: %v", err)
			}
		}
		sh.RegisterMetrics(reg)
		eng = sh
	} else {
		sync, err := durable.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			log.Fatalf("morphserve: -fsync: %v", err)
		}
		m, info, err := durable.Open(shcfg, durable.Config{Dir: *dataDir, Sync: sync, Obs: reg, Tracer: tracer})
		if err != nil {
			// A recovery-time integrity error means the files were
			// tampered with, not torn: refuse to serve.
			log.Fatalf("morphserve: open %s: %v", *dataDir, err)
		}
		if info.Fresh {
			log.Printf("morphserve: %s: fresh store, snapshot seq %d", *dataDir, info.SnapshotSeq)
		} else {
			log.Printf("morphserve: %s: recovered snapshot seq %d + %d WAL records (%d writes, %d torn tails truncated, %d lines re-verified) in %v",
				*dataDir, info.SnapshotSeq, info.ReplayedRecords, info.ReplayedWrites,
				info.TornTailCount(), info.SampleVerified, info.Elapsed.Round(time.Millisecond))
		}
		m.RegisterMetrics(reg)
		dm = m
		eng = m
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("morphserve: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("morphserve: %v: draining", sig)
		cancel()
	}()

	durability := "volatile"
	if dm != nil {
		durability = fmt.Sprintf("durable (%s, fsync=%s, snapshot-every=%v)", *dataDir, *fsyncMode, *snapEvery)
	}
	if treg != nil {
		fmt.Printf("morphserve: multi-tenant: %d tenants %v (HELLO required, per-tenant key domains + quotas)\n",
			len(treg.IDs()), treg.IDs())
	}
	fmt.Printf("morphserve: %s, %d shards, %d MiB, key %s, root log %s, listening on %s (tamper=%v, %s)\n",
		*org, n, *mem>>20, obs.KeyDesc(key), authority.KeyDesc(), ln.Addr(), *tamper, durability)
	cfg := server.Config{
		MaxConns:     *maxConns,
		MaxInflight:  *maxInflight,
		ShedWait:     *shedWait,
		ReadTimeout:  *timeout,
		FrameTimeout: *frameTimeout,
		WriteTimeout: *timeout,
		AllowTamper:  *tamper,
		Logf:         log.Printf,
		Authority:    authority,
		Obs:          reg,
		Tracer:       tracer,
		Tenants:      treg,
	}
	if dm != nil {
		cfg.SnapshotEvery = *snapEvery
	}
	srv := server.New(eng, cfg)
	if *admin != "" {
		aln, err := net.Listen("tcp", *admin)
		if err != nil {
			log.Fatalf("morphserve: admin listen: %v", err)
		}
		fmt.Printf("morphserve: admin telemetry on http://%s (/metricz /tracez /healthz /rootz /debug/pprof)\n", aln.Addr())
		plane := &obs.Plane{
			Registry: reg,
			Tracer:   tracer,
			Extra:    map[string]http.HandlerFunc{"/rootz": rootzHandler(authority)},
		}
		if *tamper {
			// Adversary interface matching the wire TAMPER op: forge the
			// log's first entry so auditors can demonstrate detection.
			plane.Extra["/rootz/tamper"] = rootzTamperHandler(authority)
		}
		go func() {
			if err := plane.Serve(ctx, aln); err != nil {
				log.Printf("morphserve: admin plane: %v", err)
			}
		}()
	}
	err = srv.Serve(ctx, ln)
	if err != nil && ctx.Err() == nil {
		log.Fatalf("morphserve: %v", err)
	}
	if dm != nil {
		// Serve already flushed the WAL; cut a final checkpoint so the
		// next start replays nothing, then release the segment files.
		if err := dm.Checkpoint(); err != nil {
			log.Printf("morphserve: final checkpoint: %v", err)
		}
		if err := dm.Close(); err != nil {
			log.Printf("morphserve: close store: %v", err)
		}
		d := dm.Durability()
		fmt.Printf("morphserve: durability: %d WAL appends, %d fsyncs, %d audit records, %d checkpoints\n",
			d.Appends, d.Fsyncs, d.AuditRecords, d.Checkpoints)
	}
	st := eng.Stats()
	fmt.Printf("morphserve: served %d reads, %d writes, %d verified fetches; overflows %v, rebases %v, re-encryptions %d\n",
		st.Reads, st.Writes, st.VerifiedFetches, st.Overflows, st.Rebases, st.Reencryptions)
	ns := srv.NetStats()
	fmt.Printf("morphserve: admission: %d conns accepted, %d rejected at the cap, %d requests shed, %d quota-shed, %d pings, %d slow-loris drops\n",
		ns.Accepted, ns.Rejected, ns.Shed, ns.QuotaShed, ns.Pings, ns.SlowLoris)
}

// rootzHandler serves the transparency log's operator view: the signing
// key, the signed head, and every epoch entry as JSON.
func rootzHandler(a *proof.Authority) http.HandlerFunc {
	type entryJSON struct {
		Epoch uint64 `json:"epoch"`
		Root  string `json:"root"`
		Prev  string `json:"prev"`
		Sig   string `json:"sig"`
	}
	return func(w http.ResponseWriter, r *http.Request) {
		head := a.Head()
		size := a.Size()
		entries, err := a.Entries(0, size)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		out := struct {
			Pub         string      `json:"pub"`
			HeadSize    uint64      `json:"head_size"`
			HeadHash    string      `json:"head_hash"`
			HeadSig     string      `json:"head_sig"`
			Unpublished uint64      `json:"unpublished"`
			Entries     []entryJSON `json:"entries"`
		}{
			Pub:         hex.EncodeToString(a.Public()),
			HeadSize:    head.Size,
			HeadHash:    hex.EncodeToString(head.Hash[:]),
			HeadSig:     hex.EncodeToString(head.Sig),
			Unpublished: a.Unpublished(),
		}
		for _, e := range entries {
			out.Entries = append(out.Entries, entryJSON{
				Epoch: e.Epoch,
				Root:  hex.EncodeToString(e.Root[:]),
				Prev:  hex.EncodeToString(e.Prev[:]),
				Sig:   hex.EncodeToString(e.Sig),
			})
		}
		body, err := json.Marshal(out)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	}
}

// rootzTamperHandler forges the log's first entry in place — the
// split-view attack morphaudit exists to catch. Mounted only with -tamper.
func rootzTamperHandler(a *proof.Authority) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if !a.TamperEntry(1) {
			http.Error(w, "log has no entries to tamper", http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("forged epoch 1 root in transparency log\n"))
	}
}
