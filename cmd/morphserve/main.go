// Command morphserve runs a sharded secure-memory service: N independent
// secmem engines behind a TCP wire protocol (READ / WRITE / VERIFY / STATS
// / SNAPSHOT / CHECKPOINT frames), with the counter organization selectable
// among the designs the paper evaluates.
//
// Usage:
//
//	morphserve -addr 127.0.0.1:7443 -org morph128 -shards 8 -mem 4194304
//	morphserve -data-dir /var/lib/morphserve            # crash-consistent
//	morphserve -data-dir d -fsync interval -snapshot-every 30s
//	morphserve -tamper        # enable the wire-level tamper op for demos
//
// Without -data-dir the store is volatile. With it, every write is
// journaled to a write-ahead log before it is acknowledged, snapshots are
// cut atomically (on the -snapshot-every timer and on CHECKPOINT frames),
// and a restart recovers the pre-crash state — refusing to start if the
// on-disk files show tampering rather than a torn crash tail.
//
// With -cluster (which requires -data-dir) the node joins a replication
// group: the primary streams sealed WAL records to followers, followers
// answer ROUTE so clients can find the leader, and a deposed primary
// fences itself. See DESIGN.md §16.
//
// Drive it with cmd/morphload; stop it with SIGINT/SIGTERM for a graceful
// drain (which also flushes the WAL).
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/securemem/morphtree/internal/ckpt"
	"github.com/securemem/morphtree/internal/cluster"
	"github.com/securemem/morphtree/internal/durable"
	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/proof"
	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/server"
	"github.com/securemem/morphtree/internal/shard"
	"github.com/securemem/morphtree/internal/tenant"
)

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		log.Fatalf("morphserve: %v", err)
	}
	if err := o.validate(); err != nil {
		log.Fatalf("morphserve: %v", err)
	}

	n := o.shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	shcfg := shard.Config{
		Shards: n,
		Mem: secmem.Config{
			MemoryBytes: o.mem,
			Enc:         o.enc,
			Tree:        o.tree,
			Key:         o.key,
		},
	}

	// One registry + tracer instruments every layer when -admin is set; a
	// nil registry keeps the whole stack on its uninstrumented fast path.
	var reg *obs.Registry
	var tracer *obs.Tracer
	if o.admin != "" {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(o.traceBuf)
		shcfg.Obs = reg
		shcfg.Tracer = tracer
	}

	// The signing authority behind OpProof attestations and the epoch-root
	// transparency log. The default seed is derived from the master key so
	// restarts keep the same identity without extra flag plumbing; operators
	// who want a distinct log identity pass -sign-seed.
	seed := o.seed
	if seed == nil {
		seed = proof.DeriveAuthoritySeed(o.key)
	}
	authority, err := proof.NewAuthority(seed)
	if err != nil {
		log.Fatalf("morphserve: -sign-seed: %v", err)
	}

	var treg *tenant.Registry
	if o.tenants != "" {
		r, err := tenant.LoadConfig(o.tenants)
		if err != nil {
			log.Fatalf("morphserve: -tenants: %v", err)
		}
		treg = r
	}

	// A cluster node must know its advertised address before Open, so the
	// listener is created ahead of the engine in every mode.
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		log.Fatalf("morphserve: %v", err)
	}

	// eng is the serving surface; dm is non-nil in durable mode, cn in
	// cluster mode (a cluster node is durable by construction).
	var eng server.Engine
	var dm *durable.Memory
	var cn *cluster.Node
	dcfg := durable.Config{Dir: o.dataDir, Sync: o.sync, KeepEpochs: o.keepEpochs, Obs: reg, Tracer: tracer}
	switch {
	case o.cluster:
		self := o.clusterSelf
		if self == "" {
			self = ln.Addr().String()
		}
		node, err := cluster.Open(shcfg, dcfg, cluster.Config{
			Self:        self,
			Peers:       o.peers,
			Primary:     o.clusterJoin == "",
			Leader:      o.clusterJoin,
			Epoch:       o.clusterEpoch,
			Lease:       o.clusterLease,
			AckReplicas: o.clusterAck,
			Logf:        log.Printf,
			Obs:         reg,
			Tracer:      tracer,
		})
		if err != nil {
			log.Fatalf("morphserve: -cluster open %s: %v", o.dataDir, err)
		}
		node.RegisterMetrics(reg)
		ri := node.Route()
		log.Printf("morphserve: cluster node %s: role %s, epoch %d, leader %q, peers %v",
			self, ri.Role, ri.Epoch, ri.Leader, o.peers)
		cn = node
		eng = node
	case o.dataDir != "":
		m, info, err := durable.Open(shcfg, dcfg)
		if err != nil {
			// A recovery-time integrity error means the files were
			// tampered with, not torn: refuse to serve.
			log.Fatalf("morphserve: open %s: %v", o.dataDir, err)
		}
		if info.Fresh {
			log.Printf("morphserve: %s: fresh store, snapshot seq %d", o.dataDir, info.SnapshotSeq)
		} else {
			log.Printf("morphserve: %s: recovered snapshot seq %d + %d deltas + %d WAL records (%d writes, %d torn tails truncated, %d lines re-verified) in %v",
				o.dataDir, info.SnapshotSeq, info.DeltasApplied, info.ReplayedRecords, info.ReplayedWrites,
				info.TornTailCount(), info.SampleVerified, info.Elapsed.Round(time.Millisecond))
		}
		m.RegisterMetrics(reg)
		dm = m
		eng = m
	default:
		sh, err := shard.New(shcfg)
		if err != nil {
			log.Fatalf("morphserve: %v", err)
		}
		if treg != nil {
			if err := sh.RegisterTenants(treg.IDs()); err != nil {
				log.Fatalf("morphserve: -tenants: %v", err)
			}
		}
		sh.RegisterMetrics(reg)
		eng = sh
	}

	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("morphserve: %v: draining", sig)
		if cn != nil {
			// Unblock writes waiting for replica acks so the drain does
			// not ride out AckTimeout.
			cn.Halt()
		}
		cancel()
	}()

	// Background incremental checkpointer: cuts dirty-line deltas on the
	// -delta-every cadence and compacts the chain into a full snapshot
	// when it grows too long. Group commits never stall behind it — the
	// delta cut copies dirty lines in memory and does its file I/O outside
	// every shard lock.
	if o.deltaEvery > 0 {
		var target ckpt.Target
		switch {
		case cn != nil:
			target = cn
		case dm != nil:
			target = dm
		}
		if target != nil {
			runner := ckpt.NewRunner(target, o.deltaEvery, 0, func(err error) {
				log.Printf("morphserve: background checkpoint: %v", err)
			})
			defer runner.Stop()
		}
	}

	durability := "volatile"
	switch {
	case cn != nil:
		durability = fmt.Sprintf("cluster (%s, fsync=%s, lease=%v, ack=%d, delta-every=%v)", o.dataDir, o.fsyncMode, o.clusterLease, o.clusterAck, o.deltaEvery)
	case dm != nil:
		durability = fmt.Sprintf("durable (%s, fsync=%s, snapshot-every=%v, delta-every=%v)", o.dataDir, o.fsyncMode, o.snapEvery, o.deltaEvery)
	}
	if treg != nil {
		fmt.Printf("morphserve: multi-tenant: %d tenants %v (HELLO required, per-tenant key domains + quotas)\n",
			len(treg.IDs()), treg.IDs())
	}
	fmt.Printf("morphserve: %s, %d shards, %d MiB, key %s, root log %s, listening on %s (tamper=%v, %s)\n",
		o.org, n, o.mem>>20, obs.KeyDesc(o.key), authority.KeyDesc(), ln.Addr(), o.tamper, durability)
	cfg := server.Config{
		MaxConns:     o.maxConns,
		MaxInflight:  o.maxInflight,
		ShedWait:     o.shedWait,
		ReadTimeout:  o.timeout,
		FrameTimeout: o.frameTimeout,
		WriteTimeout: o.timeout,
		AllowTamper:  o.tamper,
		Logf:         log.Printf,
		Authority:    authority,
		Obs:          reg,
		Tracer:       tracer,
		Tenants:      treg,
	}
	if dm != nil || cn != nil {
		cfg.SnapshotEvery = o.snapEvery
	}
	if cn != nil {
		cfg.Cluster = cn
	}
	srv := server.New(eng, cfg)
	if o.admin != "" {
		aln, err := net.Listen("tcp", o.admin)
		if err != nil {
			log.Fatalf("morphserve: admin listen: %v", err)
		}
		fmt.Printf("morphserve: admin telemetry on http://%s (/metricz /tracez /healthz /rootz /debug/pprof)\n", aln.Addr())
		plane := &obs.Plane{
			Registry: reg,
			Tracer:   tracer,
			Extra:    map[string]http.HandlerFunc{"/rootz": rootzHandler(authority)},
		}
		if o.tamper {
			// Adversary interface matching the wire TAMPER op: forge the
			// log's first entry so auditors can demonstrate detection.
			plane.Extra["/rootz/tamper"] = rootzTamperHandler(authority)
		}
		go func() {
			if err := plane.Serve(ctx, aln); err != nil {
				log.Printf("morphserve: admin plane: %v", err)
			}
		}()
	}
	err = srv.Serve(ctx, ln)
	if err != nil && ctx.Err() == nil {
		log.Fatalf("morphserve: %v", err)
	}
	if cn != nil {
		d := cn.Durability()
		if err := cn.Close(); err != nil {
			log.Printf("morphserve: close cluster node: %v", err)
		}
		fmt.Printf("morphserve: durability: %d WAL appends, %d fsyncs, %d audit records, %d checkpoints, %d deltas, %d compactions\n",
			d.Appends, d.Fsyncs, d.AuditRecords, d.Checkpoints, d.DeltaCheckpoints, d.Compactions)
	}
	if dm != nil {
		// Serve already flushed the WAL; cut a final checkpoint so the
		// next start replays nothing, then release the segment files.
		if err := dm.Checkpoint(); err != nil {
			log.Printf("morphserve: final checkpoint: %v", err)
		}
		if err := dm.Close(); err != nil {
			log.Printf("morphserve: close store: %v", err)
		}
		d := dm.Durability()
		fmt.Printf("morphserve: durability: %d WAL appends, %d fsyncs, %d audit records, %d checkpoints, %d deltas, %d compactions\n",
			d.Appends, d.Fsyncs, d.AuditRecords, d.Checkpoints, d.DeltaCheckpoints, d.Compactions)
	}
	st := eng.Stats()
	fmt.Printf("morphserve: served %d reads, %d writes, %d verified fetches; overflows %v, rebases %v, re-encryptions %d\n",
		st.Reads, st.Writes, st.VerifiedFetches, st.Overflows, st.Rebases, st.Reencryptions)
	ns := srv.NetStats()
	fmt.Printf("morphserve: admission: %d conns accepted, %d rejected at the cap, %d requests shed, %d quota-shed, %d pings, %d slow-loris drops\n",
		ns.Accepted, ns.Rejected, ns.Shed, ns.QuotaShed, ns.Pings, ns.SlowLoris)
}

// rootzHandler serves the transparency log's operator view: the signing
// key, the signed head, and every epoch entry as JSON.
func rootzHandler(a *proof.Authority) http.HandlerFunc {
	type entryJSON struct {
		Epoch uint64 `json:"epoch"`
		Root  string `json:"root"`
		Prev  string `json:"prev"`
		Sig   string `json:"sig"`
	}
	return func(w http.ResponseWriter, r *http.Request) {
		head := a.Head()
		size := a.Size()
		entries, err := a.Entries(0, size)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		out := struct {
			Pub         string      `json:"pub"`
			HeadSize    uint64      `json:"head_size"`
			HeadHash    string      `json:"head_hash"`
			HeadSig     string      `json:"head_sig"`
			Unpublished uint64      `json:"unpublished"`
			Entries     []entryJSON `json:"entries"`
		}{
			Pub:         hex.EncodeToString(a.Public()),
			HeadSize:    head.Size,
			HeadHash:    hex.EncodeToString(head.Hash[:]),
			HeadSig:     hex.EncodeToString(head.Sig),
			Unpublished: a.Unpublished(),
		}
		for _, e := range entries {
			out.Entries = append(out.Entries, entryJSON{
				Epoch: e.Epoch,
				Root:  hex.EncodeToString(e.Root[:]),
				Prev:  hex.EncodeToString(e.Prev[:]),
				Sig:   hex.EncodeToString(e.Sig),
			})
		}
		body, err := json.Marshal(out)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	}
}

// rootzTamperHandler forges the log's first entry in place — the
// split-view attack morphaudit exists to catch. Mounted only with -tamper.
func rootzTamperHandler(a *proof.Authority) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if !a.TamperEntry(1) {
			http.Error(w, "log has no entries to tamper", http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("forged epoch 1 root in transparency log\n"))
	}
}
