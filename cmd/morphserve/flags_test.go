package main

import (
	"strings"
	"testing"
	"time"
)

// parseAndValidate runs the full flag pipeline the way main does.
func parseAndValidate(t *testing.T, args ...string) (*options, error) {
	t.Helper()
	o, err := parseFlags(args)
	if err != nil {
		return nil, err
	}
	return o, o.validate()
}

// TestFlagDefaultsValid: the zero-flag invocation must validate; it is
// the documented quickstart.
func TestFlagDefaultsValid(t *testing.T) {
	o, err := parseAndValidate(t)
	if err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
	if string(o.key) != "0123456789abcdef" {
		t.Fatalf("default key = %q", o.key)
	}
	if len(o.tree) == 0 {
		t.Fatal("default org did not resolve a tree schedule")
	}
}

// TestFlagInvalidCombos: every refusal path must fire, and each error
// must name the offending flag so the operator knows what to change.
func TestFlagInvalidCombos(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring the error must contain
	}{
		{"tenants with data-dir", []string{"-tenants", "t.json", "-data-dir", "/tmp/d"}, "-tenants is incompatible with -data-dir"},
		{"tenants with cluster", []string{"-tenants", "t.json", "-cluster", "-data-dir", "/tmp/d"}, "-tenants is incompatible with -data-dir"},
		{"tenants with cluster only", []string{"-tenants", "t.json", "-cluster"}, "-tenants is incompatible with -cluster"},
		{"cluster without data-dir", []string{"-cluster"}, "-cluster requires -data-dir"},
		{"cluster follow self", []string{"-cluster", "-data-dir", "/tmp/d", "-cluster-self", "h:1", "-cluster-join", "h:1"}, "cannot follow itself"},
		{"cluster zero lease", []string{"-cluster", "-data-dir", "/tmp/d", "-cluster-lease", "0s"}, "-cluster-lease must be positive"},
		{"cluster negative ack", []string{"-cluster", "-data-dir", "/tmp/d", "-cluster-ack", "-1"}, "-cluster-ack must be >= 0"},
		{"cluster epoch zero", []string{"-cluster", "-data-dir", "/tmp/d", "-cluster-epoch", "0"}, "-cluster-epoch must be >= 1"},
		{"cluster-join without cluster", []string{"-cluster-join", "h:1"}, "no effect without -cluster"},
		{"cluster-self without cluster", []string{"-cluster-self", "h:1"}, "no effect without -cluster"},
		{"cluster-peers without cluster", []string{"-cluster-peers", "h:1,h:2"}, "no effect without -cluster"},
		{"cluster-ack without cluster", []string{"-cluster-ack", "1"}, "no effect without -cluster"},
		{"keep-epochs without data-dir", []string{"-keep-epochs", "3"}, "-keep-epochs has no effect without -data-dir"},
		{"negative keep-epochs", []string{"-data-dir", "/tmp/d", "-keep-epochs", "-1"}, "-keep-epochs must be >= 0"},
		{"delta-every without data-dir", []string{"-delta-every", "5s"}, "-delta-every has no effect without -data-dir"},
		{"negative delta-every", []string{"-data-dir", "/tmp/d", "-delta-every", "-1s"}, "-delta-every must be >= 0"},
		{"bad key hex", []string{"-key", "zz"}, "-key"},
		{"short key", []string{"-key", "0011"}, "16, 24, or 32 bytes"},
		{"bad org", []string{"-org", "nonesuch"}, "-org"},
		{"zero mem", []string{"-mem", "0"}, "-mem"},
		{"bad fsync", []string{"-fsync", "sometimes"}, "-fsync"},
		{"bad sign seed hex", []string{"-sign-seed", "xy"}, "-sign-seed"},
		{"short sign seed", []string{"-sign-seed", "aabb"}, "exactly 32 bytes"},
		{"positional args", []string{"serve"}, "positional"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseAndValidate(t, tc.args...)
			if err == nil {
				t.Fatalf("args %v accepted, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestFlagClusterResolution: a valid cluster invocation resolves peers,
// roles, and defaults the way DESIGN.md §16 documents.
func TestFlagClusterResolution(t *testing.T) {
	o, err := parseAndValidate(t,
		"-cluster", "-data-dir", "/tmp/d",
		"-cluster-self", "10.0.0.1:7443",
		"-cluster-join", "10.0.0.2:7443",
		"-cluster-peers", "10.0.0.2:7443, 10.0.0.3:7443,,",
		"-cluster-lease", "2s",
		"-cluster-ack", "1",
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.peers) != 2 || o.peers[0] != "10.0.0.2:7443" || o.peers[1] != "10.0.0.3:7443" {
		t.Fatalf("peers = %v", o.peers)
	}
	if o.clusterJoin != "10.0.0.2:7443" || o.clusterLease != 2*time.Second || o.clusterAck != 1 {
		t.Fatalf("cluster options = %+v", o)
	}
	// A primary needs no join address.
	if _, err := parseAndValidate(t, "-cluster", "-data-dir", "/tmp/d"); err != nil {
		t.Fatalf("primary invocation rejected: %v", err)
	}
}

// TestFlagKeyAndSeedResolution: explicit key/seed material round-trips.
func TestFlagKeyAndSeedResolution(t *testing.T) {
	o, err := parseAndValidate(t,
		"-key", "00112233445566778899aabbccddeeff",
		"-sign-seed", strings.Repeat("ab", 32),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.key) != 16 || o.key[0] != 0x00 || o.key[15] != 0xff {
		t.Fatalf("key = %x", o.key)
	}
	if len(o.seed) != 32 || o.seed[0] != 0xab {
		t.Fatalf("seed = %x", o.seed)
	}
}
