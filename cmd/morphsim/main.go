// Command morphsim runs one workload under one secure-memory configuration
// and reports the paper's metrics: IPC, memory-traffic breakdown, metadata
// cache behavior, counter overflows, and energy.
//
// Usage:
//
//	morphsim -config morph -workload mcf
//	morphsim -config vault -workload mix1 -measure 1000000
//	morphsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/securemem/morphtree/internal/sim"
	"github.com/securemem/morphtree/internal/workloads"
)

func main() {
	config := flag.String("config", "morph", "system preset: "+strings.Join(sim.Presets(), ", "))
	workload := flag.String("workload", "mcf", "Table II benchmark, or mix1..mix6")
	warm := flag.Uint64("warm", 0, "warmup accesses per core (0 = default)")
	measure := flag.Uint64("measure", 0, "measured accesses per core (0 = default)")
	scale := flag.Float64("scale", 0, "footprint scale (0 = default)")
	seed := flag.Uint64("seed", 1, "trace generator seed")
	list := flag.Bool("list", false, "list workloads and presets, then exit")
	flag.Parse()

	if *list {
		fmt.Println("presets: " + strings.Join(sim.Presets(), ", "))
		fmt.Print("workloads:")
		for _, w := range workloads.All(4) {
			fmt.Print(" " + w.Name)
		}
		fmt.Println()
		return
	}

	cfg, err := sim.Preset(*config)
	if err != nil {
		fatal(err)
	}
	w, err := findWorkload(*workload)
	if err != nil {
		fatal(err)
	}
	opt := sim.DefaultRunOptions()
	if *warm != 0 {
		opt.WarmupAccesses = *warm
	}
	if *measure != 0 {
		opt.MeasureAccesses = *measure
	}
	if *scale != 0 {
		opt.FootprintScale = *scale
	}
	opt.Seed = *seed

	res, err := sim.Run(cfg, w, opt)
	if err != nil {
		fatal(err)
	}
	report(res)
}

func findWorkload(name string) (workloads.Workload, error) {
	for _, w := range workloads.All(4) {
		if w.Name == name {
			return w, nil
		}
	}
	return workloads.Workload{}, fmt.Errorf("morphsim: unknown workload %q (see -list)", name)
}

func report(r *sim.Result) {
	fmt.Printf("%s on %s\n", r.Config, r.Workload)
	fmt.Printf("  IPC (per-core avg):          %8.4f  (per core: %v)\n", r.IPC, fmtFloats(r.PerCoreIPC))
	fmt.Printf("  execution time:              %8.4f ms\n", r.Seconds*1e3)
	fmt.Printf("  memory accesses/data access: %8.3f\n", r.MemAccessPerDataAccess())
	for cat := sim.CatData; cat <= sim.CatMAC; cat++ {
		v := r.CategoryPerDataAccess(cat)
		if v > 0 {
			fmt.Printf("    %-10s %8.3f\n", cat, v)
		}
	}
	fmt.Printf("  counter overflows:           %8d  (%.1f per million accesses)\n",
		r.Stats.TotalOverflows(), r.OverflowsPerMillion())
	if len(r.Stats.Overflows) > 1 {
		fmt.Printf("    per level: %v   rebases: %v\n", r.Stats.Overflows, r.Stats.Rebases)
	}
	fmt.Printf("  read latency p50/p95/p99:    %d / %d / %d cycles\n",
		r.Stats.LatencyPercentile(50), r.Stats.LatencyPercentile(95), r.Stats.LatencyPercentile(99))
	fmt.Printf("  metadata cache hit rate:     %8.3f\n", r.Stats.MetaCache.HitRate())
	fmt.Printf("  DRAM row-hit rate:           %8.3f\n",
		float64(r.Stats.DRAM.RowHits)/float64(r.Stats.DRAM.RowHits+r.Stats.DRAM.RowMisses+1))
	fmt.Printf("  energy: %.4f J   power: %.2f W   EDP: %.6f J*s\n",
		r.Energy.TotalJ, r.Energy.AvgPowerW, r.Energy.EDP)
}

func fmtFloats(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.3f", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
