// Command morphaudit is the external auditor for a morphserve
// transparency log: a thin client that trusts nothing the server says
// until it has checked the signatures and hashes itself.
//
// Each audit cycle it
//
//   - fetches the log position (ROOT): signing key, signed head, newest
//     entry — pinning the key trust-on-first-use into the state file and
//     failing hard if it ever changes;
//   - verifies the head signature, fetches any entries appended since the
//     last cycle (ROOT_RANGE), verifies every entry signature and the
//     epoch hash chain, and checks the RFC-6962 consistency proof linking
//     the previously pinned head to the new one — so a server that forks,
//     rewrites, or truncates its log is caught even if every individual
//     signature it presents is valid;
//   - spot-verifies reads: fetches PROOF witnesses for a spread of
//     addresses and reruns the whole counter-tree walk client-side with
//     proof.Verify, so a flipped byte in the server's backing store is
//     detected without trusting the server's own integrity checking.
//
// Any inconsistency makes the process exit 1 (operational failures such
// as an unreachable server exit 2). With -interval it keeps auditing
// until interrupted; -once runs a single cycle, which is what
// `make proof-smoke` and CI drive.
//
// Usage:
//
//	morphaudit -addr 127.0.0.1:7443 -once -spot 32
//	morphaudit -addr 127.0.0.1:7443 -state audit.json -interval 10s
package main

import (
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/securemem/morphtree/internal/proof"
	"github.com/securemem/morphtree/internal/shard"
	"github.com/securemem/morphtree/internal/wire"
)

// state is the auditor's persisted view of the log: everything needed to
// catch a fork or rewrite between cycles.
type state struct {
	// Pub is the TOFU-pinned signing key (hex).
	Pub string `json:"pub"`
	// Size and HeadHash pin the last verified head.
	Size     uint64 `json:"size"`
	HeadHash string `json:"head_hash"`
	// LastEntryHash chains the next batch of entries to the last one seen.
	LastEntryHash string `json:"last_entry_hash"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7443", "morphserve address to audit")
	statePath := flag.String("state", "", "state file pinning the signing key and last verified head (empty = stateless cycles)")
	once := flag.Bool("once", false, "run one audit cycle and exit")
	interval := flag.Duration("interval", 10*time.Second, "delay between audit cycles without -once")
	spot := flag.Int("spot", 16, "addresses to spot-verify with full client-side proof checking per cycle (0 disables)")
	span := flag.Uint64("span", 1<<20, "address range in bytes the spot checks spread over")
	org := flag.String("org", "morph128", "counter organization the server runs (must match for spot verification)")
	mem := flag.Uint64("mem", 4<<20, "server's protected capacity in bytes (must match for spot verification)")
	shards := flag.Int("shards", 0, "server's shard count (0 = adopt the count the first proof claims)")
	keyHex := flag.String("key", "", "AES master key in hex (data-owner credential for spot verification; default is the fixed demo key)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	flag.Parse()

	key := []byte("0123456789abcdef")
	if *keyHex != "" {
		k, err := hex.DecodeString(*keyHex)
		if err != nil {
			log.Fatalf("morphaudit: -key: %v", err)
		}
		key = k
	}
	enc, tree, err := shard.Organization(*org)
	if err != nil {
		log.Fatalf("morphaudit: %v", err)
	}
	params := proof.Params{MemoryBytes: *mem, Shards: *shards, Enc: enc, Tree: tree}

	cl := wire.NewResilient(wire.ResilientConfig{Addr: *addr, Timeout: *timeout, Logf: log.Printf})
	defer cl.Close()

	a := &auditor{cl: cl, statePath: *statePath, params: params, key: key, spot: *spot, span: *span}
	for {
		if err := a.cycle(); err != nil {
			var ie *inconsistencyError
			if errors.As(err, &ie) {
				log.Printf("morphaudit: INCONSISTENT: %v", err)
				os.Exit(1)
			}
			log.Printf("morphaudit: %v", err)
			os.Exit(2)
		}
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// inconsistencyError marks evidence of server misbehavior — a failed
// signature, a broken hash chain, a forked head, or a read whose proof
// does not verify — as opposed to operational trouble like an unreachable
// server.
type inconsistencyError struct{ err error }

func (e *inconsistencyError) Error() string { return e.err.Error() }
func (e *inconsistencyError) Unwrap() error { return e.err }

func inconsistent(format string, args ...any) error {
	return &inconsistencyError{fmt.Errorf(format, args...)}
}

type auditor struct {
	cl        *wire.ResilientClient
	statePath string
	params    proof.Params
	key       []byte
	spot      int
	span      uint64

	// st carries state across cycles in-process; the state file persists
	// it across runs.
	st     *state
	loaded bool
}

// cycle runs one full audit pass: log position, consistency, spot reads.
func (a *auditor) cycle() error {
	ri, err := a.cl.Root()
	if err != nil {
		return fmt.Errorf("fetch root: %w", err)
	}
	if err := a.loadState(); err != nil {
		return err
	}

	pub := ed25519.PublicKey(ri.Pub)
	if a.st == nil {
		// Trust-on-first-use: pin the key the first cycle sees; everything
		// after is verified against it.
		a.st = &state{Pub: hex.EncodeToString(ri.Pub)}
		log.Printf("morphaudit: pinned signing key %s", a.st.Pub)
	} else if a.st.Pub != hex.EncodeToString(ri.Pub) {
		return inconsistent("signing key changed: pinned %s, server now presents %s", a.st.Pub, hex.EncodeToString(ri.Pub))
	}

	if err := proof.VerifyHead(pub, ri.Head); err != nil {
		return inconsistent("head signature: %v", err)
	}
	if err := a.checkLog(pub, ri); err != nil {
		return err
	}
	if err := a.spotVerify(pub); err != nil {
		return err
	}
	return a.saveState()
}

// checkLog verifies the log grew append-only from the pinned head: every
// new entry's signature and hash chain, plus the consistency proof linking
// the old head to the new one.
func (a *auditor) checkLog(pub ed25519.PublicKey, ri *proof.RootInfo) error {
	oldSize := a.st.Size
	newSize := ri.Head.Size
	switch {
	case newSize < oldSize:
		return inconsistent("log shrank: pinned size %d, server reports %d", oldSize, newSize)
	case newSize == oldSize:
		if oldSize > 0 && a.st.HeadHash != hex.EncodeToString(ri.Head.Hash[:]) {
			return inconsistent("equivocation: two signed heads at size %d (pinned %s, server presents %s)",
				oldSize, a.st.HeadHash, hex.EncodeToString(ri.Head.Hash[:]))
		}
		return nil
	}

	rr, err := a.cl.RootRange(oldSize, newSize)
	if err != nil {
		return fmt.Errorf("fetch entries [%d,%d): %w", oldSize, newSize, err)
	}
	if rr.From != oldSize || rr.To != newSize || uint64(len(rr.Entries)) != newSize-oldSize {
		return inconsistent("entry range mismatch: asked [%d,%d), got [%d,%d) with %d entries",
			oldSize, newSize, rr.From, rr.To, len(rr.Entries))
	}

	var prev proof.Digest
	if a.st.LastEntryHash != "" {
		raw, err := hex.DecodeString(a.st.LastEntryHash)
		if err != nil || len(raw) != len(prev) {
			return fmt.Errorf("corrupt state: last_entry_hash %q", a.st.LastEntryHash)
		}
		copy(prev[:], raw)
	}
	for i, e := range rr.Entries {
		wantEpoch := oldSize + uint64(i) + 1
		if e.Epoch != wantEpoch {
			return inconsistent("entry %d claims epoch %d, want %d", i, e.Epoch, wantEpoch)
		}
		if err := proof.VerifyEntry(pub, e, prev); err != nil {
			return inconsistent("epoch %d: %v", e.Epoch, err)
		}
		prev = proof.EntryHash(e)
	}

	if oldSize == 0 {
		// First sight of this log: we hold every entry, so recompute the
		// Merkle head outright instead of relying on a consistency proof.
		leaves := make([]proof.Digest, len(rr.Entries))
		for i, e := range rr.Entries {
			leaves[i] = proof.EntryHash(e)
		}
		if got := proof.TreeHash(leaves); got != ri.Head.Hash {
			return inconsistent("signed head hash does not match the %d entries served", len(leaves))
		}
	} else {
		var oldHash proof.Digest
		raw, err := hex.DecodeString(a.st.HeadHash)
		if err != nil || len(raw) != len(oldHash) {
			return fmt.Errorf("corrupt state: head_hash %q", a.st.HeadHash)
		}
		copy(oldHash[:], raw)
		if err := proof.VerifyConsistency(oldSize, oldHash, newSize, ri.Head.Hash, rr.Proof); err != nil {
			return inconsistent("consistency %d -> %d: %v", oldSize, newSize, err)
		}
	}

	log.Printf("morphaudit: log consistent, %d -> %d epochs", oldSize, newSize)
	a.st.Size = newSize
	a.st.HeadHash = hex.EncodeToString(ri.Head.Hash[:])
	a.st.LastEntryHash = hex.EncodeToString(prev[:])
	return nil
}

// spotVerify fetches proofs for a spread of addresses and reruns the full
// counter-tree walk client-side against the attested roots.
func (a *auditor) spotVerify(pub ed25519.PublicKey) error {
	if a.spot <= 0 {
		return nil
	}
	span := a.span
	if span > a.params.MemoryBytes || span == 0 {
		span = a.params.MemoryBytes
	}
	lines := span / proof.LineBytes
	if lines == 0 {
		lines = 1
	}
	step := lines / uint64(a.spot)
	if step == 0 {
		step = 1
	}
	for i := 0; i < a.spot; i++ {
		addr := (uint64(i) * step % lines) * proof.LineBytes
		p, err := a.cl.Proof(addr)
		if err != nil {
			return fmt.Errorf("fetch proof for %#x: %w", addr, err)
		}
		if a.params.Shards == 0 {
			// No -shards pin: adopt the first proof's claimed count. The
			// attestation still binds it — a lie changes every digest.
			a.params.Shards = int(p.Shards)
		}
		if _, err := p.Verify(a.params, a.key, pub); err != nil {
			return inconsistent("read proof for %#x: %v", addr, err)
		}
	}
	log.Printf("morphaudit: %d/%d spot reads verified", a.spot, a.spot)
	return nil
}

func (a *auditor) loadState() error {
	if a.loaded || a.statePath == "" {
		a.loaded = true
		return nil
	}
	a.loaded = true
	raw, err := os.ReadFile(a.statePath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("read state: %w", err)
	}
	var st state
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("decode state %s: %w", a.statePath, err)
	}
	a.st = &st
	return nil
}

func (a *auditor) saveState() error {
	if a.statePath == "" {
		return nil
	}
	raw, err := json.MarshalIndent(a.st, "", "  ")
	if err != nil {
		return fmt.Errorf("encode state: %w", err)
	}
	if err := os.WriteFile(a.statePath, append(raw, '\n'), 0o600); err != nil {
		return fmt.Errorf("write state: %w", err)
	}
	return nil
}
