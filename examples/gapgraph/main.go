// Gapgraph reproduces the paper's motivating scenario: graph analytics
// (GAP suite) on a secure-memory machine. It simulates PageRank and
// betweenness-centrality on the Twitter data set under four secure-memory
// designs and compares throughput, traffic bloat, and energy-delay product.
package main

import (
	"fmt"
	"log"

	"github.com/securemem/morphtree"
)

func main() {
	configs := []string{"nonsecure", "vault", "sc64", "morph"}
	benchmarks := []string{"pr-twit", "bc-twit", "cc-twit"}

	opt := morphtree.DefaultSimOptions()
	opt.WarmupAccesses = 200_000
	opt.MeasureAccesses = 200_000

	fmt.Println("secure graph analytics: 4 cores, Twitter dataset (synthetic, Table II rates)")
	for _, benchName := range benchmarks {
		bench, err := morphtree.BenchmarkByName(benchName)
		if err != nil {
			log.Fatal(err)
		}
		w := morphtree.RateWorkload(bench, 4)
		fmt.Printf("\n%s (read-PKI %.0f, write-PKI %.0f, footprint %.1f GB):\n",
			bench.Name, bench.ReadPKI, bench.WritePKI, float64(bench.Footprint)/(1<<30))
		fmt.Printf("  %-12s %8s %10s %12s %10s\n", "config", "IPC", "traffic/DA", "overflows/M", "EDP(mJ*s)")

		var baseIPC float64
		for _, name := range configs {
			cfg, err := morphtree.SimPreset(name)
			if err != nil {
				log.Fatal(err)
			}
			res, err := morphtree.Simulate(cfg, w, opt)
			if err != nil {
				log.Fatal(err)
			}
			if name == "sc64" {
				baseIPC = res.IPC
			}
			fmt.Printf("  %-12s %8.4f %10.3f %12.1f %10.4f\n",
				cfg.Name, res.IPC, res.MemAccessPerDataAccess(),
				res.OverflowsPerMillion(), res.Energy.EDP*1e3)
		}
		_ = baseIPC
	}

	fmt.Println("\nthe 128-ary MorphTree needs fewer metadata accesses per pointer chase,")
	fmt.Println("which is where graph kernels spend their memory bandwidth (Section VII-A)")
}
