// Attacksim mounts the attacks the paper's threat model targets (Section
// II-A) against a live secure memory — direct tampering, MAC forgery,
// splicing, and the replay attack that integrity trees exist to stop — and
// shows each one being detected.
package main

import (
	"errors"
	"fmt"
	"log"

	"github.com/securemem/morphtree"
)

func main() {
	mem, err := morphtree.New(morphtree.Config{
		MemoryBytes: 64 << 20,
		Enc:         morphtree.MorphableCounters(true),
		Tree:        []morphtree.CounterSpec{morphtree.MorphableCounters(true)},
		Key:         []byte("0123456789abcdef"),
	})
	if err != nil {
		log.Fatal(err)
	}

	// The victim stores an account balance.
	balance := line64("balance=1000000 owner=alice")
	if err := mem.Write(0x1000, balance); err != nil {
		log.Fatal(err)
	}

	attacks := 0
	caught := 0
	expectCaught := func(name string, err error) {
		attacks++
		var ie *morphtree.IntegrityError
		if errors.As(err, &ie) {
			caught++
			fmt.Printf("  [CAUGHT] %-22s %v\n", name, ie)
			return
		}
		fmt.Printf("  [MISSED] %-22s read returned %v\n", name, err)
	}

	fmt.Println("attack 1: flip a bit in the stored ciphertext")
	mem.Store().FlipBit(0x1000/64, 8, 1)
	_, err = mem.Read(0x1000)
	expectCaught("data tamper", err)
	mem.Store().FlipBit(0x1000/64, 8, 1) // restore

	fmt.Println("attack 2: forge the MAC without knowing the key")
	m, _ := mem.Store().DataMAC(0x1000 / 64)
	mem.Store().SetDataMAC(0x1000/64, m^0xDEAD)
	_, err = mem.Read(0x1000)
	expectCaught("MAC forgery", err)
	mem.Store().SetDataMAC(0x1000/64, m)

	fmt.Println("attack 3: splice a valid {data, MAC} pair to another address")
	if err := mem.Write(0x2000, balance); err != nil {
		log.Fatal(err)
	}
	ct, _ := mem.Store().DataLine(0x1000 / 64)
	mac, _ := mem.Store().DataMAC(0x1000 / 64)
	victim := mem.Store().Snapshot(0x2000/64, nil)
	mem.Store().SetDataLine(0x2000/64, ct)
	mem.Store().SetDataMAC(0x2000/64, mac)
	_, err = mem.Read(0x2000)
	expectCaught("splicing", err)
	mem.Store().Replay(victim) // restore

	fmt.Println("attack 4: replay a stale {data, MAC} pair after an update")
	old := mem.Store().Snapshot(0x1000/64, nil)
	spent := line64("balance=0000000 owner=alice")
	if err := mem.Write(0x1000, spent); err != nil {
		log.Fatal(err)
	}
	mem.Store().Replay(old)
	_, err = mem.Read(0x1000)
	expectCaught("stale-data replay", err)

	fmt.Println("attack 5: full replay — data, MAC, AND every off-chip counter line")
	if err := mem.Write(0x1000, spent); err != nil {
		log.Fatal(err)
	}
	full := mem.Store().Snapshot(0x1000/64, mem.Path(0x1000))
	richAgain := line64("balance=9999999 owner=mallory")
	if err := mem.Write(0x1000, richAgain); err != nil {
		log.Fatal(err)
	}
	mem.Store().Replay(full)
	mem.FlushMetadataCache() // cold cache: trust re-derived from the on-chip root
	_, err = mem.Read(0x1000)
	expectCaught("full tuple replay", err)

	fmt.Printf("\n%d/%d attacks detected (the on-chip root anchors everything)\n", caught, attacks)
	if caught != attacks {
		log.Fatal("SECURITY FAILURE: an attack went undetected")
	}
}

// line64 pads a string to a full 64-byte cacheline.
func line64(s string) []byte {
	out := make([]byte, 64)
	copy(out, s)
	return out
}
