// Quickstart: build a secure memory with Morphable Counters, store and
// fetch data through the full encrypt-MAC-integrity-tree pipeline, and see
// tampering get caught.
package main

import (
	"errors"
	"fmt"
	"log"

	"github.com/securemem/morphtree"
)

func main() {
	key := []byte("an example 16B k") // AES-128 key

	// A 256 MB protected memory using the paper's proposal: MorphCtr-128
	// (ZCC + Rebasing) for both encryption counters and the integrity
	// tree — the compact 128-ary MorphTree.
	mem, err := morphtree.New(morphtree.Config{
		MemoryBytes: 256 << 20,
		Enc:         morphtree.MorphableCounters(true),
		Tree:        []morphtree.CounterSpec{morphtree.MorphableCounters(true)},
		Key:         key,
	})
	if err != nil {
		log.Fatal(err)
	}

	g := mem.Geometry()
	fmt.Printf("protected memory: %d MB\n", 256)
	fmt.Printf("integrity tree:   %d levels, %.1f KB total (%.4f%% overhead)\n",
		g.NumLevels(), float64(g.TreeBytes())/1024, g.TreeOverheadPercent())

	// Writes encrypt with a per-line counter, MAC the ciphertext, and
	// update the counter tree up to the on-chip root.
	secret := []byte("attack at dawn; morphable counters keep this safe")
	if err := mem.WriteAt(secret, 0x4000); err != nil {
		log.Fatal(err)
	}

	// Reads verify the MAC chain before decrypting.
	buf := make([]byte, len(secret))
	if err := mem.ReadAt(buf, 0x4000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back:        %q\n", buf)

	// An adversary with physical access flips one bit of the stored
	// ciphertext. The next read fails verification.
	mem.Store().FlipBit(0x4000/64, 3, 5)
	_, err = mem.Read(0x4000)
	var ie *morphtree.IntegrityError
	if errors.As(err, &ie) {
		fmt.Printf("tamper detected:  %v\n", ie)
	} else {
		log.Fatalf("tampering went undetected: %v", err)
	}

	st := mem.Stats()
	fmt.Printf("engine activity:  %d writes, %d reads, %d tree increments, %d overflows\n",
		st.Writes, st.Reads, sum(st.Increments), sum(st.Overflows))
}

func sum(v []uint64) uint64 {
	var t uint64
	for _, x := range v {
		t += x
	}
	return t
}
