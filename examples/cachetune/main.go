// Cachetune explores the metadata-cache sensitivity study of Figure 19:
// how the MorphTree's advantage over the SC-64 baseline grows as the
// on-chip metadata cache shrinks — and how MorphCtr-128 delivers the
// baseline's performance with half the cache.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/securemem/morphtree"
)

func main() {
	bench, err := morphtree.BenchmarkByName("mcf")
	if err != nil {
		log.Fatal(err)
	}
	w := morphtree.RateWorkload(bench, 4)
	opt := morphtree.DefaultSimOptions()
	opt.WarmupAccesses = 250_000
	opt.MeasureAccesses = 250_000

	base, _ := morphtree.SimPreset("sc64")
	morph, _ := morphtree.SimPreset("morph")
	sizes := []uint64{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}

	fmt.Printf("metadata-cache sensitivity on %s (4 cores)\n", bench.Name)
	fmt.Printf("%-10s %12s %12s %10s\n", "cache", "SC-64 IPC", "MorphCtr IPC", "speedup")

	type point struct {
		size uint64
		ipc  float64
	}
	var scCurve, moCurve []point
	for _, size := range sizes {
		b := base
		b.MetaCacheBytes = size
		m := morph
		m.MetaCacheBytes = size
		rb, err := morphtree.Simulate(b, w, opt)
		if err != nil {
			log.Fatal(err)
		}
		rm, err := morphtree.Simulate(m, w, opt)
		if err != nil {
			log.Fatal(err)
		}
		scCurve = append(scCurve, point{size, rb.IPC})
		moCurve = append(moCurve, point{size, rm.IPC})
		fmt.Printf("%7dKB %12.4f %12.4f %9.1f%%\n",
			size>>10, rb.IPC, rm.IPC, (rm.IPC/rb.IPC-1)*100)
	}

	// The paper's half-the-cache claim: find the smallest MorphCtr cache
	// whose IPC matches SC-64 at a reference size.
	ref := scCurve[len(scCurve)-1].ipc
	for _, p := range moCurve {
		if p.ipc >= ref || math.Abs(p.ipc-ref)/ref < 0.02 {
			fmt.Printf("\nMorphCtr-128 matches SC-64@%dKB with a %dKB cache (paper: half the cache)\n",
				scCurve[len(scCurve)-1].size>>10, p.size>>10)
			break
		}
	}
}
