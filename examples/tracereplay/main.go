// Tracereplay shows the trace-file workflow: dump a synthetic workload's
// memory-access trace to disk, reload it, and simulate the recorded trace
// under two secure-memory designs. The same path feeds real traces (from
// binary instrumentation or another simulator) into the evaluation.
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/securemem/morphtree"
)

func main() {
	// 1. Record: dump 200k accesses of the GemsFDTD model to the trace
	//    format (in-memory here; a file works the same way).
	bench, err := morphtree.BenchmarkByName("GemsFDTD")
	if err != nil {
		log.Fatal(err)
	}
	var traceFile bytes.Buffer
	if err := morphtree.WriteTrace(&traceFile, bench, 1.0/128, 4, 1, 200_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded trace: %d bytes, 200000 accesses\n", traceFile.Len())

	// 2. Reload it as a benchmark.
	accesses, err := morphtree.ParseTrace(&traceFile)
	if err != nil {
		log.Fatal(err)
	}
	replay, err := morphtree.TraceBenchmark("gems-recorded", accesses)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Simulate the recorded trace under two designs.
	opt := morphtree.DefaultSimOptions()
	opt.WarmupAccesses = 50_000
	opt.MeasureAccesses = 150_000
	w := morphtree.RateWorkload(replay, 4)
	for _, preset := range []string{"sc64", "morph"} {
		cfg, err := morphtree.SimPreset(preset)
		if err != nil {
			log.Fatal(err)
		}
		res, err := morphtree.Simulate(cfg, w, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s IPC %.4f   traffic/DA %.3f   overflows/M %.1f   p99 read %d cycles\n",
			cfg.Name, res.IPC, res.MemAccessPerDataAccess(),
			res.OverflowsPerMillion(), res.Stats.LatencyPercentile(99))
	}
}
