package morphtree_test

import (
	"bytes"
	"errors"
	"testing"

	"github.com/securemem/morphtree"
)

var key = []byte("0123456789abcdef")

func TestPublicFunctionalAPI(t *testing.T) {
	mem, err := morphtree.New(morphtree.Config{
		MemoryBytes: 1 << 20,
		Enc:         morphtree.MorphableCounters(true),
		Tree:        []morphtree.CounterSpec{morphtree.MorphableCounters(true)},
		Key:         key,
	})
	if err != nil {
		t.Fatal(err)
	}
	line := bytes.Repeat([]byte{0xAB}, 64)
	if err := mem.Write(4096, line); err != nil {
		t.Fatal(err)
	}
	got, err := mem.Read(4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, line) {
		t.Fatal("round trip failed")
	}
	mem.Store().FlipBit(4096/64, 0, 0)
	_, err = mem.Read(4096)
	var ie *morphtree.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("tamper not detected: %v", err)
	}
}

func TestPublicGeometryAPI(t *testing.T) {
	g, err := morphtree.Geometry(16<<30, 128, []int{128})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLevels() != 3 {
		t.Fatalf("MorphTree levels = %d, want 3", g.NumLevels())
	}
	if g.TreeBytes() > 2<<20 {
		t.Fatalf("MorphTree size = %d, want ~1MB", g.TreeBytes())
	}
}

func TestPublicSpecConstructors(t *testing.T) {
	if s := morphtree.SplitCounters(64); s.Arity != 64 || s.Name != "SC-64" {
		t.Fatalf("SplitCounters(64) = %+v", s)
	}
	if s := morphtree.MorphableCounters(true); s.Arity != 128 {
		t.Fatalf("MorphableCounters arity = %d", s.Arity)
	}
	if morphtree.MorphableCounters(true).Name == morphtree.MorphableCounters(false).Name {
		t.Fatal("rebasing variants must have distinct names")
	}
}

func TestPublicSimulationAPI(t *testing.T) {
	cfg, err := morphtree.SimPreset("morph")
	if err != nil {
		t.Fatal(err)
	}
	bench, err := morphtree.BenchmarkByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	opt := morphtree.DefaultSimOptions()
	opt.WarmupAccesses = 10_000
	opt.MeasureAccesses = 10_000
	res, err := morphtree.Simulate(cfg, morphtree.RateWorkload(bench, cfg.Cores), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Fatal("simulation made no progress")
	}
}

func TestPublicCatalog(t *testing.T) {
	if got := len(morphtree.Benchmarks()); got != 22 {
		t.Fatalf("catalog has %d benchmarks, want 22", got)
	}
	if got := len(morphtree.EvaluationWorkloads(4)); got != 28 {
		t.Fatalf("evaluation set has %d workloads, want 28", got)
	}
	if _, err := morphtree.BenchmarkByName("nope"); err == nil {
		t.Fatal("unknown benchmark must fail")
	}
	if _, err := morphtree.SimPreset("nope"); err == nil {
		t.Fatal("unknown preset must fail")
	}
}
